"""A whole ASAP overlay in one process: the service-layer demo harness.

``run_demo`` spins up one bootstrap, a surrogate daemon per populated
cluster, host agents for the calling pairs plus a pool of relay-capable
agents, joins everyone, and places the requested number of *latent*
calls (direct path over the latency threshold — the calls where relay
selection actually matters) concurrently.

Two substrates, same daemons, same bytes:

- ``transport="loopback"`` — virtual clock, fully deterministic: the
  same ``(scale, seed)`` produces byte-identical ``traces.jsonl`` runs
  in milliseconds of wall time;
- ``transport="tcp"`` — real asyncio sockets on 127.0.0.1, with
  :class:`repro.net.faulty.ShapedTransport` injecting the scenario's
  RTTs so the latency threshold and relay decisions behave as in the
  simulated world.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.control.sharding import BootstrapRouter, HashRing
from repro.core.relay_selection import ranked_relay_clusters
from repro.core.runtime import RuntimePolicy
from repro.errors import ServiceError
from repro.net.faulty import ShapedTransport
from repro.net.loopback import LoopbackHub, LoopbackTransport
from repro.net.sockets import TcpTransport
from repro.net.transport import Transport
from repro.netaddr import IPv4Address
from repro.service.bootstrap import BootstrapServer
from repro.service.host import DialResult, HostAgent
from repro.service.surrogate import SurrogateServer
from repro.service.world import ServiceWorld

__all__ = ["DemoResult", "run_demo"]

#: Relay-capable agents spun up per candidate cluster.
_RELAYS_PER_CLUSTER = 2
#: Candidate clusters (per call pair) that get relay agents.
_CANDIDATE_CLUSTERS_PER_PAIR = 2


@dataclass
class DemoResult:
    """What one demo run produced, for reporting and assertions."""

    transport: str
    calls: List[DialResult] = field(default_factory=list)
    surrogate_count: int = 0
    host_count: int = 0
    shard_count: int = 1
    #: Joins each bootstrap shard served for clusters another shard
    #: owns — all zeros while every shard is up (the router routes).
    foreign_joins: List[int] = field(default_factory=list)
    #: media frames each callee actually received, keyed by call index.
    media_delivered: List[int] = field(default_factory=list)
    #: with ``media_frames=True``: per call index, the callee's
    #: {call_id: ReceivedTrace} reconstructed from MediaFrame receipts.
    frame_traces: List[Dict] = field(default_factory=list)
    #: final virtual time of the loopback hub (0.0 on tcp).
    virtual_ms: float = 0.0
    wire_deliveries: int = 0
    wire_drops: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for call in self.calls if call.outcome == "completed")

    @property
    def relayed(self) -> int:
        return sum(1 for call in self.calls if call.path == "relay")

    def best_mos(self) -> Optional[float]:
        scores = [call.mos for call in self.calls if call.mos is not None]
        return max(scores) if scores else None


def _relay_pool_ips(
    world: ServiceWorld, pairs: List, exclude: set
) -> List[IPv4Address]:
    """Hosts worth running as relay agents: members of the best
    candidate clusters of each call pair."""
    ips: List[IPv4Address] = []
    seen = set(exclude) | world.surrogate_ips()
    for caller, callee in pairs:
        session = world.system.call(caller, callee)
        for _, cluster in ranked_relay_clusters(session.selection)[
            :_CANDIDATE_CLUSTERS_PER_PAIR
        ]:
            for host in world.hosts_in_cluster(cluster)[:_RELAYS_PER_CLUSTER]:
                if host.ip not in seen:
                    seen.add(host.ip)
                    ips.append(host.ip)
    return ips


async def _demo_main(
    world: ServiceWorld,
    make_transport: Callable[[str], Transport],
    pairs: List,
    media_ms: float,
    policy: RuntimePolicy,
    result: DemoResult,
    shards: int = 1,
    media_frames: bool = False,
) -> None:
    # One bootstrap per shard; shard 0 keeps the single-shard address
    # (and the plain "bootstrap" node name) so shards=1 runs are
    # byte-identical to the pre-sharding harness.
    ring = HashRing(shards) if shards > 1 else None
    bootstraps: List[BootstrapServer] = []
    for shard in range(shards):
        addr_key = (
            str(world.bootstrap_host.ip)
            if shard == 0
            else f"{world.bootstrap_host.ip}+{shard}"
        )
        server = BootstrapServer(
            world, make_transport(addr_key), shard_id=shard, ring=ring
        )
        await server.start()
        bootstraps.append(server)
    result.shard_count = shards
    router = (
        BootstrapRouter(ring, [s.address for s in bootstraps], world.cluster_of_ip)
        if ring is not None
        else None
    )

    def bootstrap_for(cluster: int) -> BootstrapServer:
        return bootstraps[ring.owner(cluster)] if ring is not None else bootstraps[0]

    surrogates: List[SurrogateServer] = []
    for cluster in world.populated_clusters():
        server = SurrogateServer(
            world,
            cluster,
            make_transport(str(world.surrogate_ip(cluster))),
            bootstrap_for(cluster).address,
        )
        await server.start()
        await server.register()
        surrogates.append(server)
    result.surrogate_count = len(surrogates)

    endpoint_ips = {ip for pair in pairs for ip in pair}
    relay_ips = _relay_pool_ips(world, pairs, endpoint_ips)
    agents: Dict[IPv4Address, HostAgent] = {}
    for ip in list(endpoint_ips) + relay_ips:
        agent = HostAgent(
            world,
            ip,
            make_transport(str(ip)),
            router if router is not None else bootstraps[0].address,
            policy,
        )
        await agent.start()
        agents[ip] = agent
    result.host_count = len(agents)

    for ip in sorted(agents, key=lambda a: a.value):
        if not await agents[ip].join():
            raise ServiceError(f"agent {ip} failed to join the overlay")

    callers = [agents[caller] for caller, _ in pairs]
    dials = [
        agents[caller].dial(callee, media_ms=media_ms, media_frames=media_frames)
        for caller, callee in pairs
    ]
    result.calls = await callers[0].transport.gather(*dials)

    for index, (_, callee) in enumerate(pairs):
        received = sum(agents[callee].media_received.values())
        result.media_delivered.append(received)
        if media_frames:
            agent = agents[callee]
            traces = {
                call_id: agent.received_trace(call_id)
                for call_id in sorted(agent.frame_traces)
            }
            result.frame_traces.append(traces)

    result.foreign_joins = [server.foreign_joins for server in bootstraps]

    for agent in agents.values():
        await agent.close()
    for server in surrogates:
        await server.close()
    for server in bootstraps:
        await server.close()


def run_demo(
    world: Optional[ServiceWorld] = None,
    scale: str = "tiny",
    seed: int = 0,
    calls: int = 1,
    media_ms: float = 2_000.0,
    transport: str = "loopback",
    policy: Optional[RuntimePolicy] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    shards: int = 1,
    media_frames: bool = False,
) -> DemoResult:
    """Build a world, run a full overlay in-process, place latent calls."""
    if world is None:
        world = ServiceWorld.from_scale(scale, seed, workers=workers, cache_dir=cache_dir)
    if policy is None:
        policy = RuntimePolicy()
    pairs = world.latent_pairs(calls)
    if not pairs:
        raise ServiceError(
            f"no latent call pairs with relay candidates at scale={scale} seed={seed}"
        )
    result = DemoResult(transport=transport)

    if transport == "loopback":
        host_of_addr = {str(world.bootstrap_host.ip): world.bootstrap_host}
        for host in (world.host(ip) for ip in world.scenario.population.ips()):
            host_of_addr[str(host.ip)] = host

        def latency_ms(src: str, dst: str) -> Optional[float]:
            a, b = host_of_addr.get(src), host_of_addr.get(dst)
            if a is None or b is None:
                return 1.0  # unmodeled pair: nominal localhost-ish delay
            return world.scenario.latency.host_rtt_ms(a, b)

        hub = LoopbackHub(latency_ms_fn=latency_ms)
        make = lambda addr: LoopbackTransport(hub, addr)
        obs.tracer().clock = lambda: hub.now_ms
        asyncio.run(
            hub.run(
                _demo_main(
                    world, make, pairs, media_ms, policy, result, shards, media_frames
                )
            )
        )
        result.virtual_ms = hub.now_ms
        result.wire_deliveries = hub.deliveries
        result.wire_drops = hub.drops
    elif transport == "tcp":
        # Socket addresses are dynamic (kernel-assigned ports), so the
        # shaping registry maps them back to scenario IPs as each
        # transport binds.  Every node starts before any join or dial,
        # so the registry is complete by the time any RTT matters.
        addr_to_ip: Dict[str, str] = {}
        ip_of = {str(world.bootstrap_host.ip): world.bootstrap_host}
        for host in (world.host(ip) for ip in world.scenario.population.ips()):
            ip_of[str(host.ip)] = host

        class _RegisteringShaped(ShapedTransport):
            def __init__(self, inner: Transport, ip_key: str) -> None:
                super().__init__(inner, rtt_ms_of=self._lookup)
                self._ip_key = ip_key

            async def start(self) -> None:
                await super().start()
                addr_to_ip[self.local_address] = self._ip_key

            def _lookup(self, dst_addr: str) -> Optional[float]:
                dst_key = addr_to_ip.get(dst_addr)
                if dst_key is None:
                    return None
                a, b = ip_of.get(self._ip_key), ip_of.get(dst_key)
                if a is None or b is None:
                    return None
                return world.scenario.latency.host_rtt_ms(a, b)

        make = lambda addr_key: _RegisteringShaped(TcpTransport(), addr_key)
        asyncio.run(
            _demo_main(
                world, make, pairs, media_ms, policy, result, shards, media_frames
            )
        )
    else:
        raise ServiceError(f"unknown transport {transport!r} (loopback|tcp)")
    return result
