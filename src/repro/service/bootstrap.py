"""The bootstrap daemon: registration plus the overlay's directory.

In the paper the bootstrap server hands a joining host its cluster and
serving surrogate (§6.1).  On a real wire it additionally plays
directory: nodes register their transport address at join time, and
anyone can resolve ``ip → wire address`` later.  Host agents resolve
relay candidates through it before attempting a relay setup, so only
IPs with a *running* agent behind them are ever dialed — the wire
analogue of the simulator's "is this host registered" check.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import obs
from repro.control.sharding import HashRing
from repro.net.codec import (
    ERR_NOT_SERVING,
    ROLE_SURROGATE,
    ErrorFrame,
    Join,
    JoinOk,
    Leave,
    Message,
    Ping,
    Pong,
    Resolve,
    ResolveOk,
)
from repro.net.transport import Transport
from repro.netaddr import IPv4Address
from repro.service.node import ServiceNode
from repro.service.world import ServiceWorld

__all__ = ["BootstrapServer"]


class BootstrapServer(ServiceNode):
    """Registration + directory over one :class:`ServiceWorld`.

    A server may be one shard of a sharded control plane: give it a
    ``ring`` and its ``shard_id`` and it still answers every request
    (clients fail over freely), but joins for IPs another shard owns
    are tallied in ``foreign_joins`` so tests can assert the router
    sends traffic where the ring says it belongs.
    """

    def __init__(
        self,
        world: ServiceWorld,
        transport: Transport,
        shard_id: int = 0,
        ring: Optional[HashRing] = None,
    ) -> None:
        super().__init__(transport, name=f"bootstrap-{shard_id}" if ring else "bootstrap")
        self._world = world
        self.shard_id = shard_id
        self.ring = ring
        #: ip string -> advertised wire address, filled by joins.
        self.directory: Dict[str, str] = {}
        #: cluster index -> (surrogate ip, wire address) of the daemon
        #: that registered to serve it.
        self.surrogates: Dict[int, Tuple[IPv4Address, str]] = {}
        self.joins = 0
        self.duplicate_joins = 0
        self.foreign_joins = 0
        self.leaves = 0
        self.handle(Join, self._on_join)
        self.handle(Leave, self._on_leave)
        self.handle(Resolve, self._on_resolve)
        self.handle(Ping, self._on_ping)

    async def _on_join(self, sender: str, message: Join) -> Message:
        ip_key = str(message.ip)
        duplicate = ip_key in self.directory
        self.directory[ip_key] = message.wire_addr
        self.joins += 1
        if duplicate:
            self.duplicate_joins += 1
            obs.counter("service.duplicate_joins").inc()
        obs.counter("service.joins").inc()
        cluster = (
            message.cluster
            if message.role == ROLE_SURROGATE and message.cluster >= 0
            else self._world.cluster_of_ip(message.ip)
        )
        if self.ring is not None and self.ring.owner(cluster) != self.shard_id:
            self.foreign_joins += 1
            obs.counter("service.foreign_joins").inc()
        if message.role == ROLE_SURROGATE:
            self.surrogates[cluster] = (message.ip, message.wire_addr)
            return JoinOk(
                cluster=cluster,
                surrogate_ip=message.ip,
                surrogate_addr=message.wire_addr,
            )
        if not duplicate:
            self._world.system.join(message.ip)
        serving = self.surrogates.get(cluster)
        if serving is None:
            return ErrorFrame(
                code=ERR_NOT_SERVING,
                detail=f"no surrogate daemon serves cluster {cluster}",
            )
        surrogate_ip, surrogate_addr = serving
        return JoinOk(
            cluster=cluster,
            surrogate_ip=surrogate_ip,
            surrogate_addr=surrogate_addr,
        )

    async def _on_leave(self, sender: str, message: Leave) -> Optional[Message]:
        """Best-effort deregistration (oneway, so no response frame).

        Unknown IPs are ignored — a Leave racing a TTL sweep or a
        duplicate Leave must not fault the directory."""
        if self.directory.pop(str(message.ip), None) is not None:
            self.leaves += 1
            obs.counter("service.leaves").inc()
        return None

    async def _on_resolve(self, sender: str, message: Resolve) -> Message:
        addr = self.directory.get(str(message.ip))
        return ResolveOk(
            ip=message.ip,
            found=1 if addr is not None else 0,
            addr=addr if addr is not None else "",
        )

    async def _on_ping(self, sender: str, message: Ping) -> Message:
        return Pong(token=message.token)
