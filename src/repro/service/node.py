"""Common machinery of every service daemon: typed message dispatch.

A :class:`ServiceNode` owns one transport endpoint and routes inbound
frames to per-message-type async handlers.  A frame whose type has no
handler is answered with ``ERR_UNSUPPORTED`` — a node never leaves a
requester hanging on a message it does not speak (the requester's
timeout is for *lost* messages, not unimplemented ones).

When tracing is active and an inbound frame carries the codec's trace
extension, dispatch runs inside a continuation span parented to the
*remote* caller's span — across processes this is what stitches a
``serve`` + ``dial`` pair into one causal tree.
"""

from __future__ import annotations

from typing import Awaitable, Callable, Dict, Optional, Type

from repro import obs
from repro.net.codec import ERR_UNSUPPORTED, ErrorFrame, Frame, Message
from repro.net.transport import Transport

__all__ = ["ServiceNode"]

#: A typed message handler: (sender address, message) -> response | None.
MessageHandler = Callable[[str, Message], Awaitable[Optional[Message]]]


class ServiceNode:
    """One daemon: a transport endpoint plus typed dispatch."""

    def __init__(self, transport: Transport, name: str) -> None:
        self._transport = transport
        self.name = name
        self._handlers: Dict[Type[Message], MessageHandler] = {}
        transport.bind(self._dispatch)

    @property
    def transport(self) -> Transport:
        return self._transport

    @property
    def address(self) -> str:
        return self._transport.local_address

    def handle(self, message_type: Type[Message], handler: MessageHandler) -> None:
        """Route inbound messages of one type to an async handler."""
        self._handlers[message_type] = handler

    async def _dispatch(self, sender: str, frame: Frame) -> Optional[Message]:
        handler = self._handlers.get(type(frame.message))
        if handler is None:
            return ErrorFrame(
                code=ERR_UNSUPPORTED,
                detail=f"{self.name} does not handle "
                f"{type(frame.message).__name__}",
            )
        tracer = obs.tracer()
        if tracer and frame.trace_id is not None:
            span = tracer.continue_trace(
                frame.trace_id,
                frame.parent_span,
                f"serve.{type(frame.message).__name__}",
                self.now_ms(),
                node=self.name,
            )
            try:
                return await handler(sender, frame.message)
            finally:
                span.end(self.now_ms())
        return await handler(sender, frame.message)

    async def start(self) -> None:
        await self._transport.start()

    async def close(self) -> None:
        await self._transport.close()

    def now_ms(self) -> float:
        return self._transport.now_ms()
