"""``repro.service`` — ASAP daemons over a real (or loopback) wire.

The simulated runtime (:mod:`repro.core.runtime`) drives the protocol
state machines through callback scheduling; this package runs the same
flows as asyncio daemons exchanging :mod:`repro.net` frames:

- :class:`BootstrapServer` — registration + the overlay's directory
  (ip → wire address, cluster → serving surrogate daemon);
- :class:`SurrogateServer` — serves its cluster's close cluster set and
  accepts nodal-information publishes (§6.1/§6.2);
- :class:`HostAgent` — an end host: joins, answers pings, relays media
  for others, and places calls with the paper's setup pipeline
  (ping → close-set exchange → select-close-relay → relayed media with
  keepalive failover);
- :func:`run_demo` — a whole overlay in one process (bootstrap, N
  surrogates, M host agents) on either substrate.

All daemons share :class:`ServiceWorld`, the deterministically built
scenario both sides of a TCP deployment reconstruct from
``(scale, seed)``.  Timeouts, retries and backoff come from the same
:class:`repro.core.runtime.RuntimePolicy` the simulator uses, and the
agents emit the same trace-span vocabulary (``join``, ``call``,
``setup.ping``, ``setup.close_set``, ``setup.two_hop``,
``setup.relay_pick``, ``setup.done``, ``media``), so a call over real
localhost sockets lands in ``traces.jsonl`` in the same shape as a
simulated one.
"""

from repro.service.bootstrap import BootstrapServer
from repro.service.demo import DemoResult, run_demo
from repro.service.host import DialResult, HostAgent
from repro.service.node import ServiceNode
from repro.service.surrogate import SurrogateServer
from repro.service.world import ServiceWorld

__all__ = [
    "BootstrapServer",
    "DemoResult",
    "DialResult",
    "HostAgent",
    "ServiceNode",
    "SurrogateServer",
    "ServiceWorld",
    "run_demo",
]
