"""The deterministic world every service daemon agrees on.

A TCP deployment spans processes: ``repro serve`` runs the bootstrap
and surrogates, ``repro dial`` runs the calling host agents.  They
share no memory — what they share is the *construction*: a scenario
built from the same ``(scale, seed)`` is bit-identical everywhere, so
cluster membership, surrogate election and latency ground truth agree
across processes without any state transfer.  :class:`ServiceWorld`
wraps that shared construction plus the lookups daemons need.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import ASAPConfig, derive_k_hops
from repro.core.close_cluster import CloseClusterSet
from repro.core.protocol import ASAPSystem
from repro.errors import ServiceError
from repro.netaddr import IPv4Address
from repro.scenario import Scenario, ScenarioConfig, build_scenario
from repro.topology.population import Host, NodalInfo

__all__ = ["ServiceWorld"]


class ServiceWorld:
    """One scenario plus the ASAP state daemons consult.

    The embedded :class:`ASAPSystem` is the authoritative protocol
    state *within one process* (the bootstrap's join registry, the
    surrogates' close sets); cross-process coherence comes from
    deterministic construction, not sharing.
    """

    def __init__(self, scenario: Scenario, config: Optional[ASAPConfig] = None) -> None:
        self.scenario = scenario
        if config is None:
            config = ASAPConfig(k_hops=derive_k_hops(scenario.matrix_view()))
        self.config = config
        self.system = ASAPSystem(scenario, config)
        self._cluster_by_index = {
            scenario.matrix_view().index_of[cluster.prefix]: cluster
            for cluster in scenario.clusters.all_clusters()
        }
        self.bootstrap_host = self._make_bootstrap_host()

    @classmethod
    def from_scale(
        cls,
        scale: str = "tiny",
        seed: int = 0,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> "ServiceWorld":
        config = replace(
            ScenarioConfig.preset(scale, seed), workers=workers, cache_dir=cache_dir
        )
        return cls(build_scenario(config))

    def _make_bootstrap_host(self) -> Host:
        """Synthesize the bootstrap's host identity (transit AS, like
        the simulated runtime's dedicated bootstrap servers)."""
        transit = self.scenario.topology.transit_ases()
        asn = transit[0]
        prefixes = self.scenario.allocation.prefixes_of.get(asn)
        if not prefixes:
            raise ServiceError(f"transit AS {asn} has no prefix for a bootstrap")
        return Host(
            ip=prefixes[0].nth_address(10),
            asn=asn,
            prefix=prefixes[0],
            access_delay_ms=1.0,
            info=NodalInfo(bandwidth_kbps=10**6, uptime_hours=10**4, cpu_score=100.0),
        )

    # -- lookups -----------------------------------------------------------

    def host(self, ip: IPv4Address) -> Host:
        if ip == self.bootstrap_host.ip:
            return self.bootstrap_host
        return self.scenario.population.by_ip(ip)

    def cluster_of_ip(self, ip: IPv4Address) -> int:
        return self.system.cluster_of_ip(ip)

    def cluster_size(self, cluster_index: int) -> int:
        cluster = self._cluster_by_index.get(cluster_index)
        return len(cluster.hosts) if cluster is not None else 0

    def hosts_in_cluster(self, cluster_index: int) -> List[Host]:
        cluster = self._cluster_by_index.get(cluster_index)
        return list(cluster.hosts) if cluster is not None else []

    def populated_clusters(self) -> List[int]:
        """Matrix indices of clusters holding at least one host."""
        return sorted(
            idx for idx, cluster in self._cluster_by_index.items() if cluster.hosts
        )

    def surrogate_ip(self, cluster_index: int) -> IPv4Address:
        """The elected surrogate identity of a cluster (deterministic,
        so every process derives the same answer)."""
        return self.system.surrogate(cluster_index).ip

    def surrogate_ips(self) -> set:
        """IPs of every populated cluster's elected surrogate.  Those
        hosts run the surrogate daemon, so demos must not double-book
        them as endpoints or relays (one address, one daemon)."""
        return {self.surrogate_ip(idx) for idx in self.populated_clusters()}

    def close_set(self, cluster_index: int) -> CloseClusterSet:
        return self.system.close_set(cluster_index)

    def rtt_ms(self, a: IPv4Address, b: IPv4Address) -> Optional[float]:
        """Ground-truth host RTT, used to shape transports."""
        return self.scenario.latency.host_rtt_ms(self.host(a), self.host(b))

    # -- workload ----------------------------------------------------------

    def latent_pairs(self, count: int) -> List[Tuple[IPv4Address, IPv4Address]]:
        """Host pairs whose direct path misses the latency threshold but
        that have at least one quality relay path — the calls where the
        relay machinery actually runs.  Worst direct RTT first."""
        rtt = self.scenario.matrices.rtt_ms
        threshold = self.config.lat_threshold_ms
        candidates: List[Tuple[float, int, int]] = []
        for a in range(rtt.shape[0]):
            for b in range(a + 1, rtt.shape[1]):
                value = float(rtt[a, b])
                if np.isfinite(value) and value >= threshold:
                    candidates.append((-value, a, b))
        candidates.sort()
        reserved = self.surrogate_ips()
        pairs: List[Tuple[IPv4Address, IPv4Address]] = []
        for _, a, b in candidates:
            if len(pairs) >= count:
                break
            caller = next(
                (h.ip for h in self.hosts_in_cluster(a) if h.ip not in reserved),
                None,
            )
            callee = next(
                (h.ip for h in self.hosts_in_cluster(b) if h.ip not in reserved),
                None,
            )
            if caller is None or callee is None:
                continue
            session = self.system.call(caller, callee)
            if session.selection is not None and session.selection.quality_paths > 0:
                pairs.append((caller, callee))
        return pairs
