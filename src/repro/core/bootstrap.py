"""Bootstrap nodes (paper Section 6.1).

Bootstraps are the system's dedicated always-on servers.  They keep the
annotated AS graph, the IP-prefix→ASN mapping table, and the
IP-prefix→cluster-surrogate table; they answer join requests and appoint
replacement surrogates when one fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bgp.asgraph import ASGraph
from repro.bgp.prefix_table import PrefixOriginTable
from repro.errors import ProtocolError
from repro.netaddr import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class JoinInfo:
    """What a bootstrap returns to a joining end host."""

    asn: int
    prefix: IPv4Prefix
    surrogate_ip: IPv4Address


@dataclass
class Bootstrap:
    """One bootstrap server.

    ``surrogate_of`` is shared mutable state across all bootstraps of a
    system (they replicate it); the :class:`~repro.core.protocol.ASAPSystem`
    owns the single authoritative copy.
    """

    name: str
    prefix_table: PrefixOriginTable
    graph: ASGraph
    surrogate_of: Dict[IPv4Prefix, IPv4Address]
    join_requests: int = 0
    messages: int = 0

    def join(self, ip: IPv4Address) -> JoinInfo:
        """Process a join: translate IP → (ASN, prefix, surrogate IP).

        Raises :class:`ProtocolError` when the IP matches no announced
        prefix (the host cannot participate in prefix clustering) or the
        cluster has no surrogate yet (the caller becomes one).
        """
        self.join_requests += 1
        self.messages += 2  # request + response
        match = self.prefix_table.lookup(ip)
        if match is None:
            raise ProtocolError(f"join from {ip}: no announced prefix covers it")
        prefix, asn = match
        surrogate_ip = self.surrogate_of.get(prefix)
        if surrogate_ip is None:
            raise ProtocolError(f"join from {ip}: cluster {prefix} has no surrogate")
        return JoinInfo(asn=asn, prefix=prefix, surrogate_ip=surrogate_ip)

    def register_surrogate(self, prefix: IPv4Prefix, surrogate_ip: IPv4Address) -> None:
        """Install or replace a cluster's surrogate."""
        self.surrogate_of[prefix] = surrogate_ip

    def surrogate_for(self, prefix: IPv4Prefix) -> Optional[IPv4Address]:
        return self.surrogate_of.get(prefix)

    def disseminate_graph(self) -> ASGraph:
        """Hand out the annotated AS graph (to surrogates)."""
        self.messages += 1
        return self.graph
