"""Cluster surrogate nodes (paper Section 6.1).

A surrogate is the most capable online host of its prefix cluster.  It
builds the cluster's close cluster set over the AS graph, answers close
cluster set requests from cluster members and remote callers, collects
nodal information from its cluster, and recommends a hand-off when a
better-provisioned host appears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.close_cluster import (
    CloseClusterSet,
    LatencyProbe,
    LossProbe,
    construct_close_cluster_set,
)
from repro.core.config import ASAPConfig
from repro.bgp.asgraph import ASGraph
from repro.netaddr import IPv4Address
from repro.topology.population import Host, NodalInfo


@dataclass
class Surrogate:
    """The surrogate of one prefix cluster."""

    cluster: int                 # matrix index of the cluster
    asn: int
    host: Host
    graph: ASGraph
    clusters_in_as: Callable[[int], List[int]]
    lat: LatencyProbe
    loss: LossProbe
    config: ASAPConfig = field(default_factory=ASAPConfig)
    close_set_requests: int = 0
    published_info: Dict[IPv4Address, NodalInfo] = field(default_factory=dict)
    # §6.3 load sharing: replica surrogates of a large cluster serve the
    # primary's close set instead of re-probing the network themselves.
    close_set_source: Optional["Surrogate"] = field(default=None, repr=False)
    # Optional accelerated builder (the flat-array path): called as
    # ``fast_builder(cluster, asn)`` and required to return exactly what
    # ``construct_close_cluster_set`` would — parity tests enforce it.
    fast_builder: Optional[Callable[[int, int], CloseClusterSet]] = field(
        default=None, repr=False
    )
    _close_set: Optional[CloseClusterSet] = field(default=None, repr=False)

    @property
    def ip(self) -> IPv4Address:
        return self.host.ip

    def close_set(self) -> CloseClusterSet:
        """The cluster's close cluster set (built on first use, cached)."""
        if self.close_set_source is not None:
            return self.close_set_source.close_set()
        if self._close_set is None:
            if self.fast_builder is not None:
                self._close_set = self.fast_builder(self.cluster, self.asn)
            else:
                self._close_set = construct_close_cluster_set(
                    own_cluster=self.cluster,
                    own_as=self.asn,
                    graph=self.graph,
                    clusters_in_as=self.clusters_in_as,
                    lat=self.lat,
                    loss=self.loss,
                    config=self.config,
                )
        return self._close_set

    def serve_close_set(self) -> CloseClusterSet:
        """Answer a close-cluster-set request (from members or callers)."""
        self.close_set_requests += 1
        return self.close_set()

    def refresh(self) -> CloseClusterSet:
        """Rebuild the close set (periodic maintenance)."""
        if self.close_set_source is not None:
            return self.close_set_source.refresh()
        self._close_set = None
        return self.close_set()

    def accept_nodal_info(self, ip: IPv4Address, info: NodalInfo) -> None:
        """Record a cluster member's published capability record."""
        self.published_info[ip] = info

    def recommend_handoff(self) -> Optional[IPv4Address]:
        """The IP of a strictly more capable published host, if any.

        Per the paper, a surrogate that learns of a better end host
        recommends it as the new surrogate and steps down.
        """
        own_score = self.host.info.capability()
        best_ip: Optional[IPv4Address] = None
        best_score = own_score
        for ip, info in sorted(self.published_info.items()):
            score = info.capability()
            if score > best_score:
                best_score = score
                best_ip = ip
        return best_ip

    @property
    def maintenance_messages(self) -> int:
        """Probe traffic spent building the current close set."""
        return self._close_set.probe_messages if self._close_set else 0
