"""``select-close-relay()`` — paper Fig. 10.

Given the close cluster sets S1 (caller's) and S2 (callee's):

- **one-hop**: every cluster in S1 ∩ S2 whose relay path
  ``relaylat(h1-r-h2) = S1.rtt(r) + S2.rtt(r) + relay_delay`` beats the
  latency threshold contributes *all of its member IPs* as one-hop
  relay candidates (set OS);
- **two-hop**: if OS holds fewer than ``sizeT`` candidate IPs, the
  caller fetches the close sets of one-hop candidate clusters' surrogates
  (2 messages each) and adds IP *pairs* (r1, r2) with
  ``relaylat(h1-r1-r2-h2) < latT`` (set TS).

Message accounting follows Section 7.3: one-hop selection costs 2
messages (obtaining S2 from the callee); each two-hop close-set fetch
costs 2 more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.close_cluster import CloseClusterSet
from repro.core.config import ASAPConfig


@dataclass(frozen=True)
class OneHopCandidate:
    """A one-hop relay cluster with its estimated relay-path RTT."""

    cluster: int
    relay_rtt_ms: float
    member_ips: int  # number of individual relay IPs this cluster offers


@dataclass(frozen=True)
class TwoHopCandidate:
    """A two-hop relay cluster pair with its estimated relay-path RTT."""

    first: int
    second: int
    relay_rtt_ms: float
    member_pairs: int  # |cluster(first)| × |cluster(second)| IP pairs


@dataclass
class RelaySelection:
    """Result of select-close-relay for one calling session."""

    one_hop: List[OneHopCandidate] = field(default_factory=list)
    two_hop: List[TwoHopCandidate] = field(default_factory=list)
    messages: int = 0
    two_hop_queries: int = 0

    @property
    def one_hop_ips(self) -> int:
        """|OS| — individual one-hop relay IPs found."""
        return sum(c.member_ips for c in self.one_hop)

    @property
    def two_hop_pairs(self) -> int:
        """|TS| — two-hop relay IP pairs found."""
        return sum(c.member_pairs for c in self.two_hop)

    @property
    def quality_paths(self) -> int:
        """Total quality relay paths this session can use."""
        return self.one_hop_ips + self.two_hop_pairs

    def best_rtt_ms(self) -> Optional[float]:
        """Shortest relay-path RTT among all candidates, or None."""
        rtts = [c.relay_rtt_ms for c in self.one_hop] + [
            c.relay_rtt_ms for c in self.two_hop
        ]
        return min(rtts) if rtts else None


def ranked_relay_clusters(
    selection: Optional["RelaySelection"],
) -> List[Tuple[float, int]]:
    """Relay candidate clusters of a selection, best relay-path RTT first.

    One-hop candidates contribute their cluster; two-hop candidates
    contribute their first hop (the cluster the caller forwards media
    into).  Duplicates keep their best RTT.  This ranking is shared by
    the simulated runtime's relay pick / failover and the service
    layer's host agents, so both tiers chase the same candidates in the
    same order.
    """
    if selection is None:
        return []
    ranked: List[Tuple[float, int]] = [
        (c.relay_rtt_ms, c.cluster) for c in selection.one_hop
    ]
    ranked += [(c.relay_rtt_ms, c.first) for c in selection.two_hop]
    ranked.sort()
    seen: set = set()
    out: List[Tuple[float, int]] = []
    for rtt, cluster in ranked:
        if cluster not in seen:
            seen.add(cluster)
            out.append((rtt, cluster))
    return out


def select_close_relay(
    s1: CloseClusterSet,
    s2: CloseClusterSet,
    cluster_size: Callable[[int], int],
    close_set_of: Callable[[int], CloseClusterSet],
    config: Optional[ASAPConfig] = None,
) -> RelaySelection:
    """Run select-close-relay for a session between s1's and s2's hosts.

    ``cluster_size`` maps a cluster index to its online host count;
    ``close_set_of`` fetches another surrogate's close cluster set (the
    two-hop step; each call is billed 2 messages).
    """
    if config is None:
        config = ASAPConfig()
    result = RelaySelection()
    result.messages += 2  # h1 obtains S2 from h2 (request + response)

    # One-hop: intersect close sets.
    common = sorted(set(s1.entries) & set(s2.entries))
    for cluster in common:
        size = cluster_size(cluster)
        if size <= 0:
            continue  # churned dark: no hosts left to relay through
        relay_rtt = s1.rtt_to(cluster) + s2.rtt_to(cluster) + config.relay_delay_rtt_ms
        if relay_rtt < config.lat_threshold_ms:
            result.one_hop.append(
                OneHopCandidate(
                    cluster=cluster,
                    relay_rtt_ms=relay_rtt,
                    member_ips=size,
                )
            )

    if result.one_hop_ips >= config.size_threshold:
        return result

    # Two-hop: expand through the close sets of one-hop candidate
    # clusters (the surrogates of clusters already known close to h1).
    first_hops = [c.cluster for c in result.one_hop]
    if config.max_two_hop_queries is not None:
        first_hops = first_hops[: config.max_two_hop_queries]
    seen_pairs: Dict[Tuple[int, int], float] = {}
    for r1 in first_hops:
        os1 = close_set_of(r1)
        result.messages += 2
        result.two_hop_queries += 1
        for r2 in os1.clusters():
            if r2 not in s2.entries or r2 == r1:
                continue
            relay_rtt = (
                s1.rtt_to(r1)
                + os1.rtt_to(r2)
                + s2.rtt_to(r2)
                + 2.0 * config.relay_delay_rtt_ms
            )
            if relay_rtt < config.lat_threshold_ms:
                key = (r1, r2)
                if key not in seen_pairs or relay_rtt < seen_pairs[key]:
                    seen_pairs[key] = relay_rtt
    for (r1, r2), relay_rtt in sorted(seen_pairs.items()):
        pairs = cluster_size(r1) * cluster_size(r2)
        if pairs <= 0:
            continue  # either leg's cluster has churned dark
        result.two_hop.append(
            TwoHopCandidate(
                first=r1,
                second=r2,
                relay_rtt_ms=relay_rtt,
                member_pairs=pairs,
            )
        )
    return result
