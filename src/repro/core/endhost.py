"""End host nodes (paper Section 6.1).

End hosts carry the light duties: join through a bootstrap to learn
their ASN and surrogate, publish nodal information, and run
select-close-relay when they initiate calls (the system object drives
that last step because it needs both endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.bootstrap import Bootstrap, JoinInfo
from repro.errors import ProtocolError
from repro.netaddr import IPv4Address
from repro.topology.population import Host


@dataclass
class EndHost:
    """One VoIP end host participating in ASAP."""

    host: Host
    join_info: Optional[JoinInfo] = None
    messages: int = 0

    @property
    def ip(self) -> IPv4Address:
        return self.host.ip

    @property
    def joined(self) -> bool:
        return self.join_info is not None

    def join(self, bootstraps: Sequence[Bootstrap]) -> JoinInfo:
        """Join the system through the first bootstrap that answers.

        End hosts pick a bootstrap deterministically by hashing their IP
        so the load spreads across the bootstrap fleet.
        """
        if not bootstraps:
            raise ProtocolError("no bootstraps available")
        order = list(range(len(bootstraps)))
        start = self.host.ip.value % len(bootstraps)
        order = order[start:] + order[:start]
        last_error: Optional[ProtocolError] = None
        for idx in order:
            try:
                self.messages += 2
                self.join_info = bootstraps[idx].join(self.ip)
                return self.join_info
            except ProtocolError as exc:
                last_error = exc
        raise last_error if last_error else ProtocolError("join failed")

    def publish_nodal_info(self, surrogate) -> None:
        """Periodically publish capability info to the cluster surrogate."""
        if not self.joined:
            raise ProtocolError(f"{self.ip} must join before publishing")
        self.messages += 1
        surrogate.accept_nodal_info(self.ip, self.host.info)
