"""Event-driven ASAP deployment: protocol flows over the simulated network.

:class:`ASAPSystem` computes *what* the protocol decides; this module
adds *when*: joins, nodal publishes and call setups run as real message
exchanges over :class:`~repro.sim.network.SimNetwork`, every hop paying
the latency model's one-way delay.  The headline measurement is **call
setup time** — the paper's answer to Skype's Limit 3: where Skype needs
tens-to-hundreds of seconds of probing to stabilize, ASAP's
select-close-relay completes in a handful of RTTs.

Setup flow timed for a latent session (Fig. 8's steps):

1. caller pings callee (1 RTT) and sees the direct path is latent;
2. caller fetches its close cluster set from its surrogate (1 RTT to
   the surrogate);
3. caller requests the callee's close set through the callee (1 RTT +
   the callee's own surrogate round trip when not cached);
4. if one-hop candidates are too few, the caller queries candidate
   surrogates for their close sets in parallel (max of those RTTs);
5. selection completes locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.config import ASAPConfig
from repro.core.protocol import ASAPSession, ASAPSystem
from repro.errors import ProtocolError
from repro.netaddr import IPv4Address
from repro.scenario import Scenario
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.topology.population import Host, NodalInfo


@dataclass
class JoinRecord:
    """Timing of one end host's join."""

    ip: IPv4Address
    started_ms: float
    completed_ms: Optional[float] = None

    @property
    def duration_ms(self) -> Optional[float]:
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.started_ms


@dataclass
class CallSetupRecord:
    """Timing + outcome of one call's relay selection."""

    caller: IPv4Address
    callee: IPv4Address
    started_ms: float
    completed_ms: Optional[float] = None
    session: Optional[ASAPSession] = None

    @property
    def setup_ms(self) -> Optional[float]:
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.started_ms


class ASAPRuntime:
    """Drives ASAP protocol flows through a discrete-event simulation."""

    def __init__(self, scenario: Scenario, config: Optional[ASAPConfig] = None) -> None:
        self._scenario = scenario
        self._config = config = config if config is not None else ASAPConfig()
        self._system = ASAPSystem(scenario, config)
        self.sim = Simulator()
        self.network = SimNetwork(self.sim, scenario.latency)
        self._bootstrap_hosts = self._make_bootstrap_hosts()
        self._registered: Dict[IPv4Address, Host] = {}
        self.joins: List[JoinRecord] = []
        self.call_setups: List[CallSetupRecord] = []
        self.surrogate_failures: List = []
        for host in self._bootstrap_hosts:
            self.network.register(host, lambda message: None)

    @property
    def system(self) -> ASAPSystem:
        return self._system

    def _make_bootstrap_hosts(self) -> List[Host]:
        """Synthesize dedicated bootstrap servers inside transit ASes."""
        hosts: List[Host] = []
        transit = self._scenario.topology.transit_ases()
        for index in range(self._config.bootstrap_count):
            asn = transit[index % len(transit)]
            prefixes = self._scenario.allocation.prefixes_of.get(asn)
            if not prefixes:
                raise ProtocolError(f"transit AS {asn} has no prefix for a bootstrap")
            ip = prefixes[0].nth_address(10 + index)
            hosts.append(
                Host(
                    ip=ip,
                    asn=asn,
                    prefix=prefixes[0],
                    access_delay_ms=1.0,
                    info=NodalInfo(bandwidth_kbps=10**6, uptime_hours=10**4, cpu_score=100.0),
                )
            )
        return hosts

    def _ensure_registered(self, ip: IPv4Address) -> Host:
        host = self._registered.get(ip)
        if host is None:
            host = self._scenario.population.by_ip(ip)
            self.network.register(host, lambda message: None)
            self._registered[ip] = host
        return host

    def _rtt_between(self, a: Host, b: Host) -> Optional[float]:
        return self._scenario.latency.host_rtt_ms(a, b)

    # -- join flow -----------------------------------------------------------

    def schedule_join(self, ip: IPv4Address, at_ms: float = 0.0) -> JoinRecord:
        """Schedule an end host's join at a simulated time."""
        record = JoinRecord(ip=ip, started_ms=at_ms)
        self.joins.append(record)
        host = self._ensure_registered(ip)

        def start() -> None:
            record.started_ms = self.sim.now_ms
            bootstrap_host = self._bootstrap_hosts[ip.value % len(self._bootstrap_hosts)]
            rtt = self._rtt_between(host, bootstrap_host)
            if rtt is None:
                return  # unreachable bootstrap: join fails silently
            self.network.send(host, bootstrap_host.ip, "join-request")
            self.sim.schedule(rtt, lambda: self._join_response(record, host))

        self.sim.schedule_at(at_ms, start)
        return record

    def _join_response(self, record: JoinRecord, host: Host) -> None:
        endhost = self._system.join(host.ip)
        surrogate = self._system.surrogate(
            self._system.cluster_of_ip(host.ip), requester=host.ip
        )
        surrogate_host = self._ensure_registered(surrogate.ip) if surrogate.ip in self._scenario.population else surrogate.host
        self.network.send(host, surrogate.ip, "publish-nodal-info")
        publish_rtt = self._rtt_between(host, surrogate_host)
        delay = (publish_rtt / 2.0) if publish_rtt is not None else 0.0
        self.sim.schedule(delay, lambda: self._join_done(record))

    def _join_done(self, record: JoinRecord) -> None:
        record.completed_ms = self.sim.now_ms
        obs.counter("runtime.joins").inc()

    # -- call setup flow -------------------------------------------------------

    def schedule_call(
        self,
        caller_ip: IPv4Address,
        callee_ip: IPv4Address,
        at_ms: float = 0.0,
        on_complete: Optional[Callable[[CallSetupRecord], None]] = None,
    ) -> CallSetupRecord:
        """Schedule a call setup; timing lands in the returned record."""
        record = CallSetupRecord(caller=caller_ip, callee=callee_ip, started_ms=at_ms)
        self.call_setups.append(record)
        caller = self._ensure_registered(caller_ip)
        callee = self._ensure_registered(callee_ip)

        def start() -> None:
            record.started_ms = self.sim.now_ms
            ping_rtt = self._rtt_between(caller, callee)
            if ping_rtt is None:
                return  # callee unreachable: setup cannot complete
            self.network.send(caller, callee_ip, "ping")
            self.sim.schedule(ping_rtt, lambda: self._after_ping(record, caller, callee, on_complete))

        self.sim.schedule_at(at_ms, start)
        return record

    def _after_ping(
        self,
        record: CallSetupRecord,
        caller: Host,
        callee: Host,
        on_complete: Optional[Callable[[CallSetupRecord], None]],
    ) -> None:
        session = self._system.call(caller.ip, callee.ip)
        record.session = session
        if not session.relay_needed:
            self._complete(record, on_complete)
            return

        # Fetch own close set from the caller's surrogate.
        own_surrogate = self._system.surrogate(session.caller_cluster, requester=caller.ip)
        own_rtt = self._rtt_between(caller, own_surrogate.host) or 0.0
        self.network.send(caller, own_surrogate.ip, "close-set-request")

        # Fetch the callee's close set through the callee (which may
        # itself round-trip to its surrogate first).
        callee_surrogate = self._system.surrogate(session.callee_cluster, requester=callee.ip)
        peer_leg = self._rtt_between(caller, callee) or 0.0
        callee_leg = self._rtt_between(callee, callee_surrogate.host) or 0.0
        self.network.send(caller, callee.ip, "close-set-request")
        fetch_ms = max(own_rtt, peer_leg + callee_leg)

        # Two-hop expansion queries run in parallel.
        two_hop_ms = 0.0
        if session.selection is not None and session.selection.two_hop_queries > 0:
            for candidate in session.selection.one_hop[: session.selection.two_hop_queries]:
                surrogate = self._system.surrogate(candidate.cluster, requester=caller.ip)
                rtt = self._rtt_between(caller, surrogate.host)
                self.network.send(caller, surrogate.ip, "close-set-request")
                if rtt is not None:
                    two_hop_ms = max(two_hop_ms, rtt)

        self.sim.schedule(fetch_ms + two_hop_ms, lambda: self._complete(record, on_complete))

    def _complete(
        self,
        record: CallSetupRecord,
        on_complete: Optional[Callable[[CallSetupRecord], None]],
    ) -> None:
        record.completed_ms = self.sim.now_ms
        obs.counter("runtime.call_setups").inc()
        if record.setup_ms is not None:
            obs.histogram("runtime.call_setup_ms").observe(record.setup_ms)
        if on_complete is not None:
            on_complete(record)

    # -- churn --------------------------------------------------------------------

    def schedule_leave(self, ip: IPv4Address, at_ms: float) -> None:
        """An end host leaves the system at a simulated time.

        Surrogate members trigger re-election (recorded alongside
        surrogate failures); ordinary members just drop off.
        """

        def leave() -> None:
            promoted = self._system.leave(ip)
            if promoted is not None:
                cluster_index = self._system.cluster_of_ip(ip)
                self.surrogate_failures.append(
                    (self.sim.now_ms, cluster_index, promoted.ip)
                )

        self.sim.schedule_at(at_ms, leave)

    def schedule_surrogate_failure(self, cluster_index: int, at_ms: float) -> None:
        """Kill a cluster's primary surrogate at a simulated time.

        Bootstraps appoint the next most capable host (§6.1's surrogate
        replacement); single-host clusters are left alone (their only
        member *is* the surrogate).
        """

        def fail() -> None:
            try:
                fresh = self._system.fail_surrogate(cluster_index)
            except ProtocolError:
                return
            self.surrogate_failures.append((self.sim.now_ms, cluster_index, fresh.ip))

        self.sim.schedule_at(at_ms, fail)

    # -- driving -----------------------------------------------------------------

    def run(self, until_ms: Optional[float] = None) -> None:
        """Drain the event queue (optionally bounded in simulated time)."""
        self.sim.run(until_ms=until_ms)

    def setup_times_ms(self) -> List[float]:
        """Setup durations of all completed call setups."""
        return [r.setup_ms for r in self.call_setups if r.setup_ms is not None]
