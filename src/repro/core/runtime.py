"""Event-driven ASAP deployment: protocol flows over the simulated network.

:class:`ASAPSystem` computes *what* the protocol decides; this module
adds *when* — and *what happens when the network misbehaves*.  Joins,
nodal publishes and call setups run as real request/response exchanges
over :class:`~repro.sim.network.SimNetwork`, every hop paying the
latency model's one-way delay, and every exchange guarded by a timeout.
The headline measurement is **call setup time** — the paper's answer to
Skype's Limit 3: where Skype needs tens-to-hundreds of seconds of
probing to stabilize, ASAP's select-close-relay completes in a handful
of RTTs.

Setup flow timed for a latent session (Fig. 8's steps):

1. caller pings callee (1 RTT) and sees the direct path is latent;
2. caller fetches its close cluster set from its surrogate (1 RTT to
   the surrogate);
3. caller requests the callee's close set through the callee (1 RTT +
   the callee's own surrogate round trip when not cached);
4. if one-hop candidates are too few, the caller queries candidate
   surrogates for their close sets in parallel (max of those RTTs);
5. selection completes locally.

Fault tolerance (driven by :mod:`repro.faults` injecting crashes,
outages and loss):

- every record terminates: ``outcome`` is one of ``completed``,
  ``degraded`` (fell back to the direct path, recorded as such) or
  ``failed`` (with a reason) — nothing hangs on a dead peer;
- joins retry the **next bootstrap** with exponential backoff when a
  bootstrap times out;
- close-set requests fail over to **backup surrogate-group members**
  (§6.3's replicas) before degrading to the direct path;
- active relayed calls send **keepalives** to their relay; a missed
  keepalive triggers failover to the next candidate from the already
  computed close-set intersection (§6's backup-relay maintenance), and
  the outage window is accounted through :mod:`repro.voip.outage`.

Two reachability regimes are deliberately distinct: a *structurally*
unreachable destination (the latency model has no route, a permanent
condition in these static worlds) fails fast without retries, exactly
preserving the sunny-day message counts and timings; a *fault*-caused
silence (host down, AS failed, loss) goes through the timeout → retry →
failover machinery.  With a zeroed fault schedule results are therefore
bit-identical to the pre-fault runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro import obs
from repro.obs.trace import NULL_TRACE_SPAN
from repro.core.config import ASAPConfig
from repro.core.protocol import ASAPSession, ASAPSystem
from repro.core.relay_selection import ranked_relay_clusters
from repro.errors import ConfigurationError, ProtocolError
from repro.netaddr import IPv4Address
from repro.scenario import Scenario
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.topology.population import Host, NodalInfo
from repro.voip.outage import OutageImpact, OutageWindow, account_outages
from repro.voip.quality import mos_of_path


def _finite(value) -> Optional[float]:
    """A trace-attr-safe float: rounded, or None when not finite."""
    if value is None:
        return None
    value = float(value)
    return round(value, 3) if np.isfinite(value) else None


@dataclass(frozen=True, kw_only=True)
class RuntimePolicy:
    """Timeout / retry / backoff / keepalive knobs of the runtime.

    Timeouts are per message category; retries are bounded and backed
    off exponentially (``backoff_base_ms * backoff_factor**attempt``).
    Defaults are deliberately generous relative to simulated RTTs (a few
    hundred ms) so a timeout genuinely means a fault, not a slow path.
    """

    join_timeout_ms: float = 1_500.0
    ping_timeout_ms: float = 1_000.0
    close_set_timeout_ms: float = 1_200.0
    two_hop_timeout_ms: float = 800.0
    keepalive_interval_ms: float = 2_000.0
    keepalive_timeout_ms: float = 600.0
    max_join_attempts: int = 3
    max_ping_attempts: int = 3
    max_close_set_attempts: int = 3
    backoff_base_ms: float = 100.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "join_timeout_ms",
            "ping_timeout_ms",
            "close_set_timeout_ms",
            "two_hop_timeout_ms",
            "keepalive_interval_ms",
            "keepalive_timeout_ms",
            "backoff_base_ms",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in ("max_join_attempts", "max_ping_attempts", "max_close_set_attempts"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")

    def backoff_ms(self, attempt: int) -> float:
        """Delay before retry number ``attempt + 1`` (0-indexed)."""
        return self.backoff_base_ms * self.backoff_factor**attempt


@dataclass
class JoinRecord:
    """Timing + outcome of one end host's join."""

    ip: IPv4Address
    started_ms: float
    completed_ms: Optional[float] = None
    outcome: str = "pending"          # pending | completed | failed
    failure_reason: Optional[str] = None
    attempts: int = 0
    #: The join's root trace span (the shared no-op when tracing is off).
    trace: object = field(default=NULL_TRACE_SPAN, repr=False, compare=False)

    @property
    def duration_ms(self) -> Optional[float]:
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.started_ms


@dataclass
class CallSetupRecord:
    """Timing + outcome of one call's relay selection.

    ``outcome`` is terminal-state machine output: ``completed`` (a
    usable path, relayed or direct-because-good), ``degraded`` (relay
    was needed but setup fell back to the direct path — the reason says
    why) or ``failed`` (no path at all).  ``completed_ms`` stays None
    for failed setups so :meth:`ASAPRuntime.setup_times_ms` keeps its
    meaning.
    """

    caller: IPv4Address
    callee: IPv4Address
    started_ms: float
    completed_ms: Optional[float] = None
    session: Optional[ASAPSession] = None
    outcome: str = "pending"          # pending | completed | degraded | failed
    failure_reason: Optional[str] = None
    attempts: int = 0                 # ping attempts
    retries: int = 0                  # close-set retries to backup surrogates
    relay_cluster: Optional[int] = None
    relay_ip: Optional[IPv4Address] = None
    #: The call's root trace span (the shared no-op when tracing is off).
    trace: object = field(default=NULL_TRACE_SPAN, repr=False, compare=False)

    @property
    def setup_ms(self) -> Optional[float]:
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.started_ms

    @property
    def terminal(self) -> bool:
        return self.outcome != "pending"

    @property
    def path(self) -> Optional[str]:
        """"relay" or "direct" once terminal (None for failed setups)."""
        if self.outcome == "completed" and self.relay_ip is not None:
            return "relay"
        if self.outcome in ("completed", "degraded"):
            return "direct"
        return None


@dataclass(frozen=True)
class FailoverEvent:
    """One in-call relay replacement (or the decision to degrade)."""

    detected_ms: float                # keepalive timeout fired
    restored_ms: float                # traffic flowing again (or degraded)
    old_relay: IPv4Address
    new_relay: Optional[IPv4Address]  # None = degraded to direct / dropped
    interruption_ms: float            # outage start (last keepalive send) → restored

    @property
    def failover_ms(self) -> float:
        """Detection → restoration (the §6 backup-relay switch time)."""
        return self.restored_ms - self.detected_ms


@dataclass
class MediaSessionRecord:
    """An in-progress voice session riding a selected path.

    The runtime keepalives the relay every ``keepalive_interval_ms``;
    missed keepalives drive failover.  At session end the outage windows
    are scored through :func:`repro.voip.outage.account_outages` (MOS
    dip, interruption time).
    """

    caller: IPv4Address
    callee: IPv4Address
    started_ms: float
    ends_ms: float
    relay_cluster: Optional[int] = None
    relay_ip: Optional[IPv4Address] = None
    base_rtt_ms: float = 0.0
    outcome: str = "active"           # active | finished | dropped
    degraded_to_direct: bool = False
    keepalives: int = 0
    failovers: List[FailoverEvent] = field(default_factory=list)
    outage_windows: List[OutageWindow] = field(default_factory=list)
    impact: Optional[OutageImpact] = None
    dead_relays: Set[IPv4Address] = field(default_factory=set, repr=False)
    #: Failover candidates as (relay_rtt_ms, cluster), best first.
    candidates: List[Tuple[float, int]] = field(default_factory=list, repr=False)
    #: Media-plane state (populated only when the runtime was built with
    #: a ``media_plane`` config): sampled path segments, the measured
    #: :class:`repro.media.session.MediaResult`, and the switch count.
    media_call_id: int = 0
    path_windows: List = field(default_factory=list, repr=False)
    measured: Optional[object] = field(default=None, repr=False)
    codec_switches: int = 0
    #: The media span and the owning call's root span (no-ops when off);
    #: the root is closed here because media outlives the setup record's
    #: terminal transition.
    trace: object = field(default=NULL_TRACE_SPAN, repr=False, compare=False)
    call_trace: object = field(default=NULL_TRACE_SPAN, repr=False, compare=False)

    @property
    def interruption_ms_total(self) -> float:
        return sum(w.duration_ms for w in self.outage_windows)

    @property
    def duration_ms(self) -> float:
        return self.ends_ms - self.started_ms


class _SetupState:
    """Book-keeping for one call setup's concurrent close-set legs.

    Besides leg completion flags, the state mirrors the analytic timing
    of the pre-fault runtime (``anchor + (max(own, peer) + two_hop)``):
    when no timeout or retry perturbed the flow, completion is stamped
    with exactly that sum, keeping zero-fault runs bit-identical despite
    the event chain associating the same additions differently.
    """

    __slots__ = (
        "own_done",
        "peer_done",
        "own_failed",
        "peer_failed",
        "two_hop_pending",
        "anchor_ms",
        "own_rtt_ms",
        "peer_rtt_ms",
        "two_hop_ms",
        "perturbed",
    )

    def __init__(self, anchor_ms: float) -> None:
        self.own_done = False
        self.peer_done = False
        self.own_failed = False
        self.peer_failed = False
        self.two_hop_pending = 0
        self.anchor_ms = anchor_ms
        self.own_rtt_ms = 0.0
        self.peer_rtt_ms = 0.0
        self.two_hop_ms = 0.0
        self.perturbed = False

    @property
    def fetch_done(self) -> bool:
        return self.own_done and self.peer_done

    @property
    def analytic_completed_ms(self) -> float:
        return self.anchor_ms + (
            max(self.own_rtt_ms, self.peer_rtt_ms) + self.two_hop_ms
        )


class ASAPRuntime:
    """Drives ASAP protocol flows through a discrete-event simulation."""

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[ASAPConfig] = None,
        policy: Optional[RuntimePolicy] = None,
        media_plane=None,
        media_seed: int = 0,
    ) -> None:
        self._scenario = scenario
        self._config = config = config if config is not None else ASAPConfig()
        self._policy = policy if policy is not None else RuntimePolicy()
        #: Optional :class:`repro.media.session.MediaPlaneConfig`.  When
        #: set, every media session also runs real frames over its
        #: (sampled) path and is scored from the received trace; when
        #: ``None`` — the default — no extra events are scheduled and
        #: runs stay bit-identical to the frame-free runtime.
        self._media_plane = media_plane
        self._media_seed = media_seed
        self._system = ASAPSystem(scenario, config)
        self.sim = Simulator()
        self.network = SimNetwork(self.sim, scenario.latency)
        self._bootstrap_hosts = self._make_bootstrap_hosts()
        self._registered: Dict[IPv4Address, Host] = {}
        self.joins: List[JoinRecord] = []
        self.call_setups: List[CallSetupRecord] = []
        self.media_sessions: List[MediaSessionRecord] = []
        self.surrogate_failures: List = []
        for host in self._bootstrap_hosts:
            self.network.register(host, lambda message: None)

    @property
    def system(self) -> ASAPSystem:
        return self._system

    @property
    def policy(self) -> RuntimePolicy:
        return self._policy

    @property
    def bootstrap_hosts(self) -> List[Host]:
        return list(self._bootstrap_hosts)

    def _make_bootstrap_hosts(self) -> List[Host]:
        """Synthesize dedicated bootstrap servers inside transit ASes."""
        hosts: List[Host] = []
        transit = self._scenario.topology.transit_ases()
        for index in range(self._config.bootstrap_count):
            asn = transit[index % len(transit)]
            prefixes = self._scenario.allocation.prefixes_of.get(asn)
            if not prefixes:
                raise ProtocolError(f"transit AS {asn} has no prefix for a bootstrap")
            ip = prefixes[0].nth_address(10 + index)
            hosts.append(
                Host(
                    ip=ip,
                    asn=asn,
                    prefix=prefixes[0],
                    access_delay_ms=1.0,
                    info=NodalInfo(bandwidth_kbps=10**6, uptime_hours=10**4, cpu_score=100.0),
                )
            )
        return hosts

    def _ensure_registered(self, ip: IPv4Address) -> Host:
        host = self._registered.get(ip)
        if host is None:
            host = self._scenario.population.by_ip(ip)
            self.network.register(host, lambda message: None)
            self._registered[ip] = host
        return host

    def _rtt_between(self, a: Host, b: Host) -> Optional[float]:
        return self._scenario.latency.host_rtt_ms(a, b)

    # -- join flow -----------------------------------------------------------

    def schedule_join(self, ip: IPv4Address, at_ms: float = 0.0) -> JoinRecord:
        """Schedule an end host's join at a simulated time."""
        record = JoinRecord(ip=ip, started_ms=at_ms)
        self.joins.append(record)
        host = self._ensure_registered(ip)

        def start() -> None:
            record.started_ms = self.sim.now_ms
            tracer = obs.tracer()
            if tracer:
                tracer.clock = lambda: self.sim.now_ms
                record.trace = tracer.begin(
                    "join", self.sim.now_ms, ip=str(ip), asn=host.asn
                )
            self._try_join(record, host, attempt=0)

        self.sim.schedule_at(at_ms, start)
        return record

    def _try_join(self, record: JoinRecord, host: Host, attempt: int) -> None:
        bootstraps = self._bootstrap_hosts
        bootstrap_host = bootstraps[(host.ip.value + attempt) % len(bootstraps)]
        rtt = self._rtt_between(host, bootstrap_host)
        if rtt is None:
            # No route in the static world: retrying cannot help.
            self._join_failed(record, "bootstrap-unreachable")
            return
        record.attempts += 1
        self.network.request(
            host,
            bootstrap_host.ip,
            "join-request",
            timeout_ms=self._policy.join_timeout_ms,
            rtt_ms=rtt,
            on_response=lambda: self._join_response(record, host),
            on_timeout=lambda: self._join_retry(record, host, attempt),
            trace=record.trace,
        )

    def _join_retry(self, record: JoinRecord, host: Host, attempt: int) -> None:
        obs.counter("runtime.join_retries").inc()
        record.trace.point("join.retry", self.sim.now_ms, attempt=attempt + 1)
        if attempt + 1 >= self._policy.max_join_attempts:
            self._join_failed(record, "join-timeout")
            return
        self.sim.schedule(
            self._policy.backoff_ms(attempt),
            lambda: self._try_join(record, host, attempt + 1),
        )

    def _join_failed(self, record: JoinRecord, reason: str) -> None:
        record.outcome = "failed"
        record.failure_reason = reason
        obs.counter("runtime.joins_failed").inc()
        obs.event("join.failed", level="debug", ip=str(record.ip), reason=reason)
        record.trace.end(self.sim.now_ms, outcome="failed", reason=reason)

    def _join_response(self, record: JoinRecord, host: Host) -> None:
        endhost = self._system.join(host.ip)
        surrogate = self._system.surrogate(
            self._system.cluster_of_ip(host.ip), requester=host.ip
        )
        surrogate_host = self._ensure_registered(surrogate.ip) if surrogate.ip in self._scenario.population else surrogate.host
        self.network.send(host, surrogate.ip, "publish-nodal-info", trace=record.trace)
        publish_rtt = self._rtt_between(host, surrogate_host)
        delay = (publish_rtt / 2.0) if publish_rtt is not None else 0.0
        self.sim.schedule(delay, lambda: self._join_done(record))

    def _join_done(self, record: JoinRecord) -> None:
        record.completed_ms = self.sim.now_ms
        record.outcome = "completed"
        obs.counter("runtime.joins").inc()
        record.trace.end(self.sim.now_ms, outcome="completed")

    # -- call setup flow -------------------------------------------------------

    def schedule_call(
        self,
        caller_ip: IPv4Address,
        callee_ip: IPv4Address,
        at_ms: float = 0.0,
        on_complete: Optional[Callable[[CallSetupRecord], None]] = None,
        media_duration_ms: Optional[float] = None,
    ) -> CallSetupRecord:
        """Schedule a call setup; timing lands in the returned record.

        With ``media_duration_ms`` set, a successful setup starts a
        keepalive-guarded :class:`MediaSessionRecord` on the selected
        path for that long.
        """
        record = CallSetupRecord(caller=caller_ip, callee=callee_ip, started_ms=at_ms)
        self.call_setups.append(record)
        caller = self._ensure_registered(caller_ip)
        callee = self._ensure_registered(callee_ip)

        def start() -> None:
            record.started_ms = self.sim.now_ms
            tracer = obs.tracer()
            if tracer:
                tracer.clock = lambda: self.sim.now_ms
                record.trace = tracer.begin(
                    "call",
                    self.sim.now_ms,
                    caller=str(caller_ip),
                    callee=str(callee_ip),
                    caller_as=caller.asn,
                    callee_as=callee.asn,
                )
            self._try_ping(record, caller, callee, 0, on_complete, media_duration_ms)

        self.sim.schedule_at(at_ms, start)
        return record

    def _try_ping(
        self,
        record: CallSetupRecord,
        caller: Host,
        callee: Host,
        attempt: int,
        on_complete,
        media_duration_ms,
    ) -> None:
        ping_rtt = self._rtt_between(caller, callee)
        if ping_rtt is None:
            self._setup_failed(record, "callee-unreachable", on_complete)
            return
        record.attempts += 1
        ping = record.trace.child(
            "setup.ping", self.sim.now_ms, attempt=attempt + 1
        )

        def responded() -> None:
            ping.end(self.sim.now_ms, outcome="ok", rtt_ms=round(ping_rtt, 3))
            self._after_ping(record, caller, callee, on_complete, media_duration_ms)

        def timed_out() -> None:
            ping.end(self.sim.now_ms, outcome="timeout")
            self._ping_retry(
                record, caller, callee, attempt, on_complete, media_duration_ms
            )

        self.network.request(
            caller,
            callee.ip,
            "ping",
            timeout_ms=self._policy.ping_timeout_ms,
            rtt_ms=ping_rtt,
            on_response=responded,
            on_timeout=timed_out,
            trace=ping,
        )

    def _ping_retry(
        self, record, caller, callee, attempt, on_complete, media_duration_ms
    ) -> None:
        obs.counter("runtime.ping_retries").inc()
        if attempt + 1 >= self._policy.max_ping_attempts:
            self._setup_failed(record, "ping-timeout", on_complete)
            return
        self.sim.schedule(
            self._policy.backoff_ms(attempt),
            lambda: self._try_ping(
                record, caller, callee, attempt + 1, on_complete, media_duration_ms
            ),
        )

    def _after_ping(
        self, record, caller: Host, callee: Host, on_complete, media_duration_ms
    ) -> None:
        select = record.trace.child("setup.select", self.sim.now_ms)
        with obs.tracer().scope(select):
            session = self._system.call(caller.ip, callee.ip)
        selection = session.selection
        select.end(
            self.sim.now_ms,
            relay_needed=session.relay_needed,
            direct_rtt_ms=_finite(session.direct_rtt_ms),
            one_hop=len(selection.one_hop) if selection is not None else 0,
            two_hop=len(selection.two_hop) if selection is not None else 0,
            messages=selection.messages if selection is not None else 0,
        )
        record.session = session
        if not session.relay_needed:
            self._setup_complete(record, "completed", on_complete, media_duration_ms)
            return

        state = _SetupState(anchor_ms=self.sim.now_ms)
        self._request_own_close_set(
            record, state, caller, callee, 0, on_complete, media_duration_ms
        )
        self._request_peer_close_set(
            record, state, caller, callee, 0, on_complete, media_duration_ms
        )

    # The two close-set legs run concurrently; each tries the serving
    # surrogate first, then the remaining group members (§6.3 replicas)
    # on timeout.  A structurally unreachable surrogate contributes 0 ms
    # and no retries (matching the analytic model: the set still arrives
    # through the system state).

    def _surrogate_order(self, cluster: int, requester: IPv4Address):
        group = self._system.surrogate_group(cluster)
        if len(group) > 1:
            first = self._system.surrogate(cluster, requester=requester)
            group.sort(key=lambda s: (s.ip != first.ip, str(s.ip)))
        return group[: self._policy.max_close_set_attempts]

    def _request_own_close_set(
        self, record, state, caller, callee, attempt, on_complete, media_duration_ms
    ) -> None:
        order = self._surrogate_order(record.session.caller_cluster, caller.ip)
        if attempt >= len(order):
            state.own_failed = True
            self._leg_done(record, state, "own", caller, callee, on_complete, media_duration_ms)
            return
        surrogate = order[attempt]
        self._ensure_registered(surrogate.ip)
        rtt = self._rtt_between(caller, surrogate.host)
        if rtt is None:
            self.network.send(caller, surrogate.ip, "close-set-request", trace=record.trace)
            self._leg_done(record, state, "own", caller, callee, on_complete, media_duration_ms)
            return
        if attempt > 0:
            record.retries += 1
            obs.counter("runtime.close_set_retries").inc()
        else:
            state.own_rtt_ms = rtt
        leg = record.trace.child(
            "setup.close_set",
            self.sim.now_ms,
            leg="own",
            attempt=attempt + 1,
            surrogate=str(surrogate.ip),
        )

        def responded() -> None:
            leg.end(self.sim.now_ms, outcome="ok", rtt_ms=round(rtt, 3))
            self._leg_done(
                record, state, "own", caller, callee, on_complete, media_duration_ms
            )

        def timed_out() -> None:
            leg.end(self.sim.now_ms, outcome="timeout")
            state.perturbed = True
            self._request_own_close_set(
                record, state, caller, callee, attempt + 1, on_complete, media_duration_ms
            )

        self.network.request(
            caller,
            surrogate.ip,
            "close-set-request",
            timeout_ms=self._policy.close_set_timeout_ms,
            rtt_ms=rtt,
            on_response=responded,
            on_timeout=timed_out,
            trace=leg,
        )

    def _request_peer_close_set(
        self, record, state, caller, callee, attempt, on_complete, media_duration_ms
    ) -> None:
        order = self._surrogate_order(record.session.callee_cluster, callee.ip)
        if attempt >= len(order):
            state.peer_failed = True
            self._leg_done(record, state, "peer", caller, callee, on_complete, media_duration_ms)
            return
        surrogate = order[attempt]
        self._ensure_registered(surrogate.ip)
        peer_leg = self._rtt_between(caller, callee)
        callee_leg = self._rtt_between(callee, surrogate.host)
        if peer_leg is None:
            # Callee vanished from the routing fabric after the ping —
            # only possible structurally, so no retry value.
            self.network.send(caller, callee.ip, "close-set-request", trace=record.trace)
            self._leg_done(record, state, "peer", caller, callee, on_complete, media_duration_ms)
            return
        combined = peer_leg + (callee_leg if callee_leg is not None else 0.0)
        if attempt > 0:
            record.retries += 1
            obs.counter("runtime.close_set_retries").inc()
        else:
            state.peer_rtt_ms = combined
        leg = record.trace.child(
            "setup.close_set",
            self.sim.now_ms,
            leg="peer",
            attempt=attempt + 1,
            surrogate=str(surrogate.ip),
        )

        def responded() -> None:
            leg.end(self.sim.now_ms, outcome="ok", rtt_ms=round(combined, 3))
            self._leg_done(
                record, state, "peer", caller, callee, on_complete, media_duration_ms
            )

        def timed_out() -> None:
            leg.end(self.sim.now_ms, outcome="timeout")
            state.perturbed = True
            self._request_peer_close_set(
                record, state, caller, callee, attempt + 1, on_complete, media_duration_ms
            )

        self.network.request(
            caller,
            callee.ip,
            "close-set-request",
            timeout_ms=self._policy.close_set_timeout_ms,
            rtt_ms=combined,
            on_response=responded,
            on_timeout=timed_out,
            trace=leg,
        )

    def _leg_done(
        self, record, state, leg: str, caller, callee, on_complete, media_duration_ms
    ) -> None:
        if leg == "own":
            state.own_done = True
        else:
            state.peer_done = True
        if not state.fetch_done:
            return
        if state.own_failed or state.peer_failed:
            self._setup_complete(
                record,
                "degraded",
                on_complete,
                media_duration_ms,
                reason="close-set-unavailable",
            )
            return
        self._start_two_hop(record, state, caller, on_complete, media_duration_ms)

    def _start_two_hop(self, record, state, caller, on_complete, media_duration_ms) -> None:
        """Query candidate surrogates' close sets in parallel (Fig. 8 step 4)."""
        session = record.session
        selection = session.selection

        def one_resolved() -> None:
            state.two_hop_pending -= 1
            if state.two_hop_pending == 0:
                self._finalize_setup(record, state, on_complete, media_duration_ms)

        if selection is not None and selection.two_hop_queries > 0:
            for candidate in selection.one_hop[: selection.two_hop_queries]:
                surrogate = self._system.surrogate(candidate.cluster, requester=caller.ip)
                self._ensure_registered(surrogate.ip)
                rtt = self._rtt_between(caller, surrogate.host)
                if rtt is None:
                    self.network.send(caller, surrogate.ip, "close-set-request", trace=record.trace)
                    continue
                state.two_hop_ms = max(state.two_hop_ms, rtt)
                state.two_hop_pending += 1
                query = record.trace.child(
                    "setup.two_hop",
                    self.sim.now_ms,
                    cluster=candidate.cluster,
                    surrogate=str(surrogate.ip),
                )

                def resolved(query=query, rtt=rtt) -> None:
                    query.end(self.sim.now_ms, outcome="ok", rtt_ms=round(rtt, 3))
                    one_resolved()

                def timed_out(query=query) -> None:
                    query.end(self.sim.now_ms, outcome="timeout")
                    state.perturbed = True
                    one_resolved()

                self.network.request(
                    caller,
                    surrogate.ip,
                    "close-set-request",
                    timeout_ms=self._policy.two_hop_timeout_ms,
                    rtt_ms=rtt,
                    on_response=resolved,
                    on_timeout=timed_out,
                    trace=query,
                )
        if state.two_hop_pending == 0:
            self._finalize_setup(record, state, on_complete, media_duration_ms)

    def _finalize_setup(self, record, state, on_complete, media_duration_ms) -> None:
        completed_ms = None if state.perturbed else state.analytic_completed_ms
        selection = record.session.selection
        relay = self._pick_relay(record.session)
        if record.trace:
            best = selection.best_rtt_ms() if selection is not None else None
            record.trace.point(
                "setup.relay_pick",
                self.sim.now_ms,
                relay=str(relay[1]) if relay is not None else None,
                cluster=relay[0] if relay is not None else None,
                chosen_rtt_ms=_finite(
                    record.session.best_path_rtt_ms if relay is not None else None
                ),
                best_candidate_rtt_ms=_finite(best),
                direct_rtt_ms=_finite(record.session.direct_rtt_ms),
            )
        if relay is not None:
            record.relay_cluster, record.relay_ip = relay
            self._setup_complete(
                record, "completed", on_complete, media_duration_ms,
                completed_ms=completed_ms,
            )
            return
        had_candidates = selection is not None and (
            selection.one_hop or selection.two_hop
        )
        self._setup_complete(
            record,
            "degraded",
            on_complete,
            media_duration_ms,
            reason="relay-offline" if had_candidates else "no-relay-candidates",
            completed_ms=completed_ms,
        )

    def _relay_candidate_clusters(self, session: ASAPSession) -> List[Tuple[float, int]]:
        """Failover candidate clusters, best relay-path RTT first."""
        return ranked_relay_clusters(session.selection)

    def _pick_relay(
        self, session: ASAPSession, exclude: Optional[Set[IPv4Address]] = None
    ) -> Optional[Tuple[int, IPv4Address]]:
        """Best candidate relay host that is online right now."""
        exclude = exclude or set()
        exclude = exclude | {session.caller, session.callee}
        for _, cluster in self._relay_candidate_clusters(session):
            for host in self._system.online_hosts_in_cluster(cluster):
                if host.ip in exclude or self.network.is_host_down(host.ip):
                    continue
                return cluster, host.ip
        return None

    def _setup_complete(
        self,
        record,
        outcome: str,
        on_complete,
        media_duration_ms,
        reason: Optional[str] = None,
        completed_ms: Optional[float] = None,
    ) -> None:
        record.completed_ms = self.sim.now_ms if completed_ms is None else completed_ms
        record.outcome = outcome
        record.failure_reason = reason
        obs.counter("runtime.call_setups").inc()
        if outcome == "degraded":
            obs.counter("runtime.call_setups_degraded").inc()
        if record.setup_ms is not None:
            obs.histogram("runtime.call_setup_ms").observe(record.setup_ms)
        record.trace.point(
            "setup.done",
            self.sim.now_ms,
            outcome=outcome,
            reason=reason,
            setup_ms=_finite(record.setup_ms),
            path=record.path,
            relay=str(record.relay_ip) if record.relay_ip is not None else None,
        )
        if on_complete is not None:
            on_complete(record)
        if media_duration_ms is not None:
            self._start_media(record, media_duration_ms)
        else:
            # No media rides this setup: the call's trace ends with it.
            record.trace.end(self.sim.now_ms, outcome=outcome)

    def _setup_failed(self, record, reason: str, on_complete) -> None:
        record.outcome = "failed"
        record.failure_reason = reason
        obs.counter("runtime.call_setups_failed").inc()
        obs.event(
            "call.failed",
            level="debug",
            caller=str(record.caller),
            callee=str(record.callee),
            reason=reason,
        )
        record.trace.end(self.sim.now_ms, outcome="failed", reason=reason)
        if on_complete is not None:
            on_complete(record)

    # -- in-call keepalives + relay failover ------------------------------------

    def _start_media(self, record: CallSetupRecord, duration_ms: float) -> None:
        session = record.session
        base_rtt = session.best_path_rtt_ms if session is not None else float("inf")
        if record.path == "direct" and session is not None:
            base_rtt = session.direct_rtt_ms
        media = MediaSessionRecord(
            caller=record.caller,
            callee=record.callee,
            started_ms=self.sim.now_ms,
            ends_ms=self.sim.now_ms + duration_ms,
            relay_cluster=record.relay_cluster,
            relay_ip=record.relay_ip,
            base_rtt_ms=float(base_rtt),
        )
        if session is not None:
            media.candidates = self._relay_candidate_clusters(session)
        media.call_trace = record.trace
        media.trace = record.trace.child(
            "media",
            self.sim.now_ms,
            path=record.path,
            relay=str(media.relay_ip) if media.relay_ip is not None else None,
            cluster=media.relay_cluster,
        )
        self.media_sessions.append(media)
        obs.counter("runtime.media_sessions").inc()
        if media.relay_ip is not None:
            self._ensure_registered(media.relay_ip)
            self.sim.schedule(
                self._policy.keepalive_interval_ms, lambda: self._keepalive(media, record)
            )
        if self._media_plane is not None:
            media.media_call_id = len(self.media_sessions)
            self._sample_media_path(media)
            window = self._media_plane.window_ms
            tick = media.started_ms + window
            while tick < media.ends_ms:
                at = tick
                self.sim.schedule_at(at, lambda: self._sample_media_path(media))
                tick += window
        self.sim.schedule_at(media.ends_ms, lambda: self._finish_media(media))

    def _media_path_conditions(self, media: MediaSessionRecord):
        """Current (rtt_ms, loss_rate) of the media path — relay legs
        when relayed, the direct pair otherwise.  Pure reads: no RNG
        draws, no messages, so sampling never perturbs the event flow."""
        caller = self._ensure_registered(media.caller)
        callee = self._ensure_registered(media.callee)
        if media.relay_ip is not None:
            relay = self._ensure_registered(media.relay_ip)
            legs = [(caller, relay), (relay, callee)]
        else:
            legs = [(caller, callee)]
        rtt = 0.0
        survive = 1.0
        for src, dst in legs:
            leg_rtt = self._rtt_between(src, dst)
            if leg_rtt is None or not np.isfinite(leg_rtt):
                return None, 1.0
            rtt += leg_rtt
            survive *= 1.0 - self.network.loss_rate_between(src, dst)
        return rtt, 1.0 - survive

    def _sample_media_path(self, media: MediaSessionRecord) -> None:
        """Record the path's conditions as a session-relative segment."""
        if media.outcome != "active" or self.sim.now_ms >= media.ends_ms:
            return
        from repro.media.session import PathWindow

        rtt, loss = self._media_path_conditions(media)
        if rtt is None:
            # Structurally unreachable right now: keep the last known
            # RTT (frames in flight pace against it) but lose everything.
            rtt = media.path_windows[-1].rtt_ms if media.path_windows else media.base_rtt_ms
            if not np.isfinite(rtt):
                return
            loss = 1.0
        segment = PathWindow(
            start_ms=round(self.sim.now_ms - media.started_ms, 3),
            rtt_ms=float(rtt),
            loss_rate=float(loss),
        )
        last = media.path_windows[-1] if media.path_windows else None
        if last is None or (last.rtt_ms, last.loss_rate) != (segment.rtt_ms, segment.loss_rate):
            media.path_windows.append(segment)

    def _keepalive(self, media: MediaSessionRecord, record: CallSetupRecord) -> None:
        if media.outcome != "active" or media.relay_ip is None:
            return
        if self.sim.now_ms >= media.ends_ms:
            return
        caller = self._ensure_registered(media.caller)
        relay_host = self._ensure_registered(media.relay_ip)
        media.keepalives += 1
        sent_at = self.sim.now_ms
        rtt = self._rtt_between(caller, relay_host)
        self.network.request(
            caller,
            media.relay_ip,
            "keepalive",
            timeout_ms=self._policy.keepalive_timeout_ms,
            rtt_ms=rtt,
            on_response=lambda: self._keepalive_ok(media, record, sent_at),
            on_timeout=lambda: self._relay_lost(media, record, sent_at),
            trace=media.trace,
        )

    def _keepalive_ok(self, media, record, sent_at: float) -> None:
        if media.outcome != "active":
            return
        next_at = sent_at + self._policy.keepalive_interval_ms
        if next_at < media.ends_ms:
            self.sim.schedule_at(
                max(next_at, self.sim.now_ms), lambda: self._keepalive(media, record)
            )

    def _relay_lost(self, media, record, sent_at: float) -> None:
        """A keepalive went unanswered: the relay is presumed dead."""
        if media.outcome != "active":
            return
        obs.counter("runtime.keepalive_timeouts").inc()
        dead = media.relay_ip
        media.dead_relays.add(dead)
        detected = self.sim.now_ms
        media.trace.point("media.relay_lost", detected, relay=str(dead))
        self._failover(media, record, dead, sent_at, detected)

    def _failover(self, media, record, old_relay, outage_start, detected) -> None:
        candidate = (
            self._pick_relay(record.session, exclude=media.dead_relays)
            if record.session is not None
            else None
        )
        if candidate is None:
            self._degrade_media(media, old_relay, outage_start, detected)
            return
        cluster, ip = candidate
        caller = self._ensure_registered(media.caller)
        relay_host = self._ensure_registered(ip)
        rtt = self._rtt_between(caller, relay_host)
        self.network.request(
            caller,
            ip,
            "relay-setup",
            timeout_ms=self._policy.keepalive_timeout_ms,
            rtt_ms=rtt,
            on_response=lambda: self._failover_done(
                media, record, old_relay, cluster, ip, outage_start, detected
            ),
            on_timeout=lambda: self._failover_candidate_dead(
                media, record, old_relay, ip, outage_start, detected
            ),
            trace=media.trace,
        )

    def _failover_candidate_dead(
        self, media, record, old_relay, ip, outage_start, detected
    ) -> None:
        if media.outcome != "active":
            return
        media.dead_relays.add(ip)
        media.trace.point(
            "media.failover_candidate_dead", self.sim.now_ms, candidate=str(ip)
        )
        self._failover(media, record, old_relay, outage_start, detected)

    def _failover_done(
        self, media, record, old_relay, cluster, ip, outage_start, detected
    ) -> None:
        if media.outcome != "active":
            return
        restored = self.sim.now_ms
        event = FailoverEvent(
            detected_ms=detected,
            restored_ms=restored,
            old_relay=old_relay,
            new_relay=ip,
            interruption_ms=restored - outage_start,
        )
        media.failovers.append(event)
        media.outage_windows.append(OutageWindow(start_ms=outage_start, end_ms=restored))
        media.relay_cluster = cluster
        media.relay_ip = ip
        obs.counter("runtime.failovers").inc()
        obs.histogram("runtime.failover_ms").observe(event.failover_ms)
        obs.histogram("runtime.interruption_ms").observe(event.interruption_ms)
        media.trace.point(
            "media.failover",
            restored,
            old_relay=str(old_relay),
            new_relay=str(ip),
            cluster=cluster,
            detected_ms=round(detected, 3),
            failover_ms=round(event.failover_ms, 3),
            interruption_ms=round(event.interruption_ms, 3),
        )
        next_at = restored + self._policy.keepalive_interval_ms
        if next_at < media.ends_ms:
            self.sim.schedule_at(next_at, lambda: self._keepalive(media, record))

    def _degrade_media(self, media, old_relay, outage_start, detected) -> None:
        """No surviving relay candidate: direct path, or drop the call."""
        restored = self.sim.now_ms
        caller = self._ensure_registered(media.caller)
        callee = self._ensure_registered(media.callee)
        direct = self._rtt_between(caller, callee)
        event = FailoverEvent(
            detected_ms=detected,
            restored_ms=restored,
            old_relay=old_relay,
            new_relay=None,
            interruption_ms=restored - outage_start,
        )
        media.failovers.append(event)
        obs.histogram("runtime.interruption_ms").observe(event.interruption_ms)
        if direct is not None and np.isfinite(direct):
            media.outage_windows.append(OutageWindow(start_ms=outage_start, end_ms=restored))
            media.degraded_to_direct = True
            media.relay_ip = None
            media.relay_cluster = None
            obs.counter("runtime.media_degraded").inc()
            media.trace.point(
                "media.degraded",
                restored,
                old_relay=str(old_relay),
                detected_ms=round(detected, 3),
                interruption_ms=round(event.interruption_ms, 3),
            )
            return
        # Nothing carries the call: it drops here.  The call is still
        # scored over its scheduled duration, with the undelivered tail
        # (through ends_ms) counted as outage.
        media.outage_windows.append(OutageWindow(start_ms=outage_start, end_ms=media.ends_ms))
        media.outcome = "dropped"
        obs.counter("runtime.media_dropped").inc()
        media.trace.point(
            "media.dropped",
            restored,
            old_relay=str(old_relay),
            detected_ms=round(detected, 3),
        )
        self._score_media(media)

    def _finish_media(self, media: MediaSessionRecord) -> None:
        if media.outcome != "active":
            return
        media.outcome = "finished"
        obs.counter("runtime.media_finished").inc()
        self._score_media(media)

    def _score_media(self, media: MediaSessionRecord) -> None:
        duration = max(media.duration_ms, 1e-9)
        base_mos = (
            mos_of_path(media.base_rtt_ms)
            if np.isfinite(media.base_rtt_ms)
            else 1.0
        )
        # Windows are recorded in absolute sim time, but account_outages
        # clips against [0, duration] — shift them call-relative first.
        windows = [
            OutageWindow(
                start_ms=w.start_ms - media.started_ms,
                end_ms=w.end_ms - media.started_ms,
            )
            for w in media.outage_windows
        ]
        media.impact = account_outages(
            base_mos=base_mos,
            duration_ms=duration,
            windows=windows,
        )
        obs.histogram("runtime.media_mos_dip").observe(media.impact.mos_dip)
        if self._media_plane is not None and media.path_windows:
            from repro.media.session import run_media_session

            result = run_media_session(
                call_id=media.media_call_id,
                duration_ms=duration,
                path=media.path_windows,
                outages=windows,
                config=self._media_plane,
                seed=self._media_seed,
                start_ms=media.started_ms,
                timeline=obs.timeline(),
                span=media.trace,
                call=f"{media.caller}-{media.callee}",
            )
            media.measured = result
            media.codec_switches = len(result.switches)
            obs.histogram("runtime.media_measured_mos").observe(result.score.mos)
            media.trace.point(
                "media.measured",
                self.sim.now_ms,
                mos=round(result.score.mos, 6),
                frames=len(result.trace.frames),
                switches=media.codec_switches,
                effective_loss=round(result.score.effective_loss, 6),
            )
        now = self.sim.now_ms
        media.trace.end(
            now,
            outcome=media.outcome,
            keepalives=media.keepalives,
            failovers=len(media.failovers),
            degraded_to_direct=media.degraded_to_direct,
            interruption_ms=round(media.interruption_ms_total, 3),
            mos_dip=round(media.impact.mos_dip, 6),
        )
        media.call_trace.end(now, outcome=media.outcome)

    # -- churn --------------------------------------------------------------------

    def fail_host(self, ip: IPv4Address):
        """Take a host down *now*: network silence + protocol departure.

        Used by the fault injector for crashes and churn.  Returns the
        promoted surrogate when the victim led its cluster.
        """
        self.network.set_host_down(ip)
        if ip not in self._scenario.population:
            return None
        promoted = self._system.leave(ip)
        if promoted is not None:
            cluster_index = self._system.cluster_of_ip(ip)
            self.surrogate_failures.append((self.sim.now_ms, cluster_index, promoted.ip))
        return promoted

    def schedule_leave(self, ip: IPv4Address, at_ms: float) -> None:
        """An end host leaves the system at a simulated time.

        Surrogate members trigger re-election (recorded alongside
        surrogate failures); ordinary members just drop off.  The host
        also goes silent on the network, so in-flight setups and
        keepalives aimed at it time out instead of succeeding.
        """
        self.sim.schedule_at(at_ms, lambda: self.fail_host(ip))

    def schedule_surrogate_failure(self, cluster_index: int, at_ms: float) -> None:
        """Kill a cluster's primary surrogate at a simulated time.

        Bootstraps appoint the next most capable host (§6.1's surrogate
        replacement); single-host clusters are left alone (their only
        member *is* the surrogate).
        """

        def fail() -> None:
            try:
                fresh = self._system.fail_surrogate(cluster_index)
            except ProtocolError:
                return
            self.surrogate_failures.append((self.sim.now_ms, cluster_index, fresh.ip))

        self.sim.schedule_at(at_ms, fail)

    # -- driving -----------------------------------------------------------------

    def run(self, until_ms: Optional[float] = None) -> None:
        """Drain the event queue (optionally bounded in simulated time)."""
        self.sim.run(until_ms=until_ms)

    def setup_times_ms(self) -> List[float]:
        """Setup durations of all completed call setups."""
        return [r.setup_ms for r in self.call_setups if r.setup_ms is not None]

    def pending_records(self) -> List:
        """Records that never reached a terminal outcome (should be none
        after a full :meth:`run`)."""
        hung: List = [j for j in self.joins if j.outcome == "pending"]
        hung += [c for c in self.call_setups if c.outcome == "pending"]
        hung += [m for m in self.media_sessions if m.outcome == "active"]
        return hung
