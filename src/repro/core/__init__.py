"""The ASAP protocol (paper Section 6).

Three node roles: **bootstraps** (dedicated servers: prefix→AS and
prefix→surrogate mapping, AS-graph dissemination), **cluster surrogates**
(the most capable host of each prefix cluster: builds and serves the
cluster's *close cluster set*), and **end hosts** (join, publish nodal
info, and run close-relay selection when calling).

The two algorithms from the paper's Figs. 9-10:

- :func:`repro.core.close_cluster.construct_close_cluster_set` — a
  valley-free-constrained BFS (≤ k AS hops) over the annotated AS graph,
  measuring surrogate-to-surrogate RTT/loss and pruning expansion at
  clusters that fail the thresholds;
- :func:`repro.core.relay_selection.select_close_relay` — intersect the
  endpoints' close cluster sets for one-hop relays; when too few, expand
  through one-hop candidates' close sets for two-hop relays.
"""

from repro.core.config import ASAPConfig, derive_k_hops
from repro.core.close_cluster import CloseClusterEntry, CloseClusterSet, construct_close_cluster_set
from repro.core.relay_selection import RelaySelection, select_close_relay
from repro.core.protocol import ASAPSession, ASAPSystem
from repro.core.assignment import RelayAssignment, RelayAssignmentService
from repro.core.runtime import (
    ASAPRuntime,
    CallSetupRecord,
    FailoverEvent,
    JoinRecord,
    MediaSessionRecord,
    RuntimePolicy,
)

__all__ = [
    "ASAPConfig",
    "ASAPRuntime",
    "CallSetupRecord",
    "FailoverEvent",
    "JoinRecord",
    "MediaSessionRecord",
    "RuntimePolicy",
    "ASAPSession",
    "ASAPSystem",
    "CloseClusterEntry",
    "CloseClusterSet",
    "RelayAssignment",
    "RelayAssignmentService",
    "RelaySelection",
    "construct_close_cluster_set",
    "derive_k_hops",
    "select_close_relay",
]
