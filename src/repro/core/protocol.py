"""The assembled ASAP system over a scenario.

:class:`ASAPSystem` wires the three node roles together on top of a
built :class:`~repro.scenario.Scenario`:

- bootstraps get the prefix→AS table (from parsed BGP data) and the
  protocol AS graph (Gao-inferred by default);
- every populated cluster elects its most capable host as surrogate;
- close cluster sets are built lazily per cluster and cached (they are
  periodic maintenance state in the real system);
- :meth:`ASAPSystem.call` runs one VoIP session: measure the direct
  path, and when it misses the latency threshold run
  select-close-relay and pick the best relay.

Surrogate-to-surrogate probes (``lat()``/``loss()`` of Fig. 9) read the
scenario's delegate matrices — the same measured data the paper's
trace-driven simulation replays.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.core.bootstrap import Bootstrap
from repro.core.close_cluster import CloseClusterSet, construct_close_cluster_set
from repro.core.config import ASAPConfig
from repro.core.endhost import EndHost
from repro.core.relay_selection import RelaySelection, select_close_relay
from repro.core.surrogate import Surrogate
from repro.errors import ProtocolError
from repro.netaddr import IPv4Address
from repro.scenario import Scenario
from repro.util.parallel import chunked, fork_available, resolve_workers, run_forked
from repro.voip.quality import mos_of_path


@dataclass
class ASAPSession:
    """Outcome of one ASAP calling session."""

    caller: IPv4Address
    callee: IPv4Address
    caller_cluster: int
    callee_cluster: int
    direct_rtt_ms: float
    relay_needed: bool
    selection: Optional[RelaySelection] = None
    best_relay_rtt_ms: Optional[float] = None

    @property
    def messages(self) -> int:
        """Protocol messages spent selecting relays (Fig. 18's metric)."""
        return self.selection.messages if self.selection else 0

    @property
    def quality_paths(self) -> int:
        """Quality relay paths found (Figs. 11-12's metric)."""
        return self.selection.quality_paths if self.selection else 0

    @property
    def best_path_rtt_ms(self) -> float:
        """RTT of the best path the session can use (direct or relayed)."""
        candidates = [self.direct_rtt_ms]
        if self.best_relay_rtt_ms is not None:
            candidates.append(self.best_relay_rtt_ms)
        return min(candidates)

    def best_path_mos(self, loss_rate: float = 0.005) -> float:
        """MOS of the best usable path (paper's Figs. 15-16 metric)."""
        return mos_of_path(self.best_path_rtt_ms, loss_rate)


class ASAPSystem:
    """A running ASAP deployment over one scenario."""

    def __init__(self, scenario: Scenario, config: Optional[ASAPConfig] = None) -> None:
        from repro.worldarrays import flat_enabled

        self._scenario = scenario
        self._config = config = config if config is not None else ASAPConfig()
        self._view = scenario.matrix_view()
        self._clusters = scenario.clusters
        self._flat_builder = None
        self._use_flat_close_sets = flat_enabled()
        graph = scenario.protocol_graph

        # Cluster bookkeeping at matrix-index granularity.
        self._clusters_by_as: Dict[int, List[int]] = {}
        for idx, asn in enumerate(self._view.asn_of):
            self._clusters_by_as.setdefault(int(asn), []).append(idx)

        # Elect surrogates: the most capable hosts per cluster.  Large
        # clusters get several (§6.3 load sharing): one per
        # ``config.hosts_per_surrogate`` members; replicas serve the
        # primary's close set.
        surrogate_of_prefix: Dict = {}
        self._surrogates: Dict[int, List[Surrogate]] = {}
        for cluster in self._clusters.all_clusters():
            idx = self._view.index_of[cluster.prefix]
            group = self._elect_group(idx, cluster)
            self._surrogates[idx] = group
            surrogate_of_prefix[cluster.prefix] = group[0].ip

        self._bootstraps = [
            Bootstrap(
                name=f"bootstrap-{i}",
                prefix_table=scenario.prefix_table,
                graph=graph,
                surrogate_of=surrogate_of_prefix,
            )
            for i in range(config.bootstrap_count)
        ]

        self._endhosts: Dict[IPv4Address, EndHost] = {}
        self._offline: set = set()
        self._offline_in_cluster: Counter = Counter()
        self.sessions_run = 0
        self._init_close_sets()

    def _flat_close_set_builder(self, own_cluster: int, own_as: int):
        """Surrogate fast-builder hook: the flat-array close-set path.

        The vectorized builder (CSR graph export + probe arrays) is
        created on first use and shared by every surrogate of this
        system; its results are bit-identical to the reference
        construction (parity-tested), so surrogates cache them exactly
        as they would the reference's.
        """
        return self._flat_builder_instance().build(own_cluster, own_as)

    def _flat_builder_instance(self):
        if self._flat_builder is None:
            from repro.worldarrays import FlatCloseSetBuilder

            self._flat_builder = FlatCloseSetBuilder(
                self._scenario.protocol_graph,
                self._view,
                self._clusters_by_as,
                self._config,
            )
        return self._flat_builder

    # -- wiring ---------------------------------------------------------------

    @property
    def config(self) -> ASAPConfig:
        return self._config

    @property
    def scenario(self) -> Scenario:
        return self._scenario

    @property
    def bootstraps(self) -> List[Bootstrap]:
        return list(self._bootstraps)

    def _elect_group(self, idx: int, cluster) -> List[Surrogate]:
        """Elect the cluster's surrogate group, primary first."""
        ranked = sorted(
            cluster.hosts, key=lambda h: (-h.info.capability(), h.ip)
        )
        count = max(1, -(-len(cluster.hosts) // self._config.hosts_per_surrogate))
        count = min(count, len(ranked))
        group: List[Surrogate] = []
        for position in range(count):
            member = Surrogate(
                cluster=idx,
                asn=cluster.asn,
                host=ranked[position],
                graph=self._scenario.protocol_graph,
                clusters_in_as=self.clusters_in_as,
                lat=self._probe_lat,
                loss=self._probe_loss,
                config=self._config,
                fast_builder=(
                    self._flat_close_set_builder if self._use_flat_close_sets else None
                ),
            )
            if group:
                member.close_set_source = group[0]
            group.append(member)
        return group

    def surrogate(
        self, cluster_index: int, requester: Optional[IPv4Address] = None
    ) -> Surrogate:
        """The cluster's serving surrogate.

        Without a requester, the primary.  With one, requests spread
        over the group by IP hash (§6.3 load sharing).
        """
        try:
            group = self._surrogates[cluster_index]
        except KeyError:
            raise ProtocolError(f"no surrogate for cluster {cluster_index}") from None
        if requester is None or len(group) == 1:
            return group[0]
        return group[requester.value % len(group)]

    def surrogate_group(self, cluster_index: int) -> List[Surrogate]:
        """All surrogates of a cluster (primary first)."""
        try:
            return list(self._surrogates[cluster_index])
        except KeyError:
            raise ProtocolError(f"no surrogate for cluster {cluster_index}") from None

    def clusters_in_as(self, asn: int) -> List[int]:
        """Matrix indices of online clusters hosted by an AS."""
        return list(self._clusters_by_as.get(asn, ()))

    def cluster_of_ip(self, ip: IPv4Address) -> int:
        """Matrix index of the cluster containing an end-host IP."""
        cluster = self._clusters.cluster_of(ip)
        return self._view.index_of[cluster.prefix]

    def _probe_lat(self, own: int, other: int) -> Optional[float]:
        value = self._view.rtt_cell(own, other)
        return None if not np.isfinite(value) else value

    def _probe_loss(self, own: int, other: int) -> Optional[float]:
        value = self._view.loss_cell(own, other)
        rtt = self._view.rtt_cell(own, other)
        return None if not np.isfinite(rtt) else value

    # -- membership -------------------------------------------------------------

    def _mark_offline(self, ip: IPv4Address) -> None:
        if ip not in self._offline:
            self._offline.add(ip)
            self._offline_in_cluster[self.cluster_of_ip(ip)] += 1

    def _mark_online(self, ip: IPv4Address) -> None:
        if ip in self._offline:
            self._offline.discard(ip)
            self._offline_in_cluster[self.cluster_of_ip(ip)] -= 1

    def online_size(self, cluster_index: int) -> int:
        """Online host count of a cluster (its relay capacity right now).

        Feeding this into :func:`select_close_relay` keeps churned-away
        hosts out of the candidate accounting — a dark cluster offers
        zero relays, however attractive its measured paths.
        """
        total = int(self._view.sizes[cluster_index])
        return total - self._offline_in_cluster.get(cluster_index, 0)

    def online_hosts_in_cluster(self, cluster_index: int) -> List:
        """Online member hosts of a cluster, most capable first."""
        cluster = self._clusters.clusters[self._view.prefixes[cluster_index]]
        members = [h for h in cluster.hosts if h.ip not in self._offline]
        members.sort(key=lambda h: (-h.info.capability(), h.ip))
        return members

    def join(self, ip: IPv4Address) -> EndHost:
        """Join an end host: bootstrap lookup + nodal info publication."""
        self._mark_online(ip)
        host = self._scenario.population.by_ip(ip)
        endhost = EndHost(host=host)
        info = endhost.join(self._bootstraps)
        idx = self._view.index_of[info.prefix]
        endhost.publish_nodal_info(self.surrogate(idx, requester=ip))
        self._endhosts[ip] = endhost
        return endhost

    def is_online(self, ip: IPv4Address) -> bool:
        return ip not in self._offline

    def leave(self, ip: IPv4Address) -> Optional[Surrogate]:
        """An end host goes offline (churn).

        If the leaver serves as a surrogate, the cluster re-elects its
        group from the remaining online members (and bootstraps learn
        the new primary); returns the new primary in that case.  A
        single-host cluster simply goes dark — its surrogate entry
        remains until a member returns, mirroring how a real system
        only notices on the next failed request.
        """
        if ip in self._offline:
            return None  # already gone; nothing further to tear down
        host = self._scenario.population.by_ip(ip)
        self._mark_offline(ip)
        self._endhosts.pop(ip, None)
        cluster_index = self.cluster_of_ip(ip)
        group = self._surrogates[cluster_index]
        if all(member.ip != ip for member in group):
            return None
        cluster = self._clusters.clusters[self._view.prefixes[cluster_index]]
        remaining = [h for h in cluster.hosts if h.ip != ip and h.ip not in self._offline]
        if not remaining:
            return None  # cluster dark; stale surrogate entry remains

        class _Survivors:
            def __init__(self, prefix, asn, hosts):
                self.prefix = prefix
                self.asn = asn
                self.hosts = hosts

        fresh = self._elect_group(
            cluster_index, _Survivors(cluster.prefix, cluster.asn, remaining)
        )
        self._surrogates[cluster_index] = fresh
        for bootstrap in self._bootstraps:
            bootstrap.register_surrogate(cluster.prefix, fresh[0].ip)
        return fresh[0]

    def fail_surrogate(self, cluster_index: int) -> Surrogate:
        """Kill a surrogate; bootstraps appoint the next most capable host.

        Raises :class:`ProtocolError` for a single-host cluster (its only
        member *is* the surrogate).
        """
        old = self.surrogate(cluster_index)
        cluster = self._clusters.clusters[self._view.prefixes[cluster_index]]
        remaining = [
            h
            for h in cluster.hosts
            if h.ip != old.host.ip and h.ip not in self._offline
        ]
        if not remaining:
            raise ProtocolError(
                f"cluster {cluster.prefix} has no other host to promote"
            )
        self._mark_offline(old.host.ip)

        class _Survivors:
            """Cluster view excluding the failed primary."""

            def __init__(self, prefix, hosts):
                self.prefix = prefix
                self.asn = cluster.asn
                self.hosts = hosts

        group = self._elect_group(cluster_index, _Survivors(cluster.prefix, remaining))
        self._surrogates[cluster_index] = group
        for bootstrap in self._bootstraps:
            bootstrap.register_surrogate(cluster.prefix, group[0].ip)
        return group[0]

    # -- close-set maintenance -----------------------------------------------------

    def _init_close_sets(self) -> None:
        """Warm the close-set state according to the scenario's runtime knobs.

        With an artifact cache configured, previously built close sets
        (keyed by scenario config + protocol config) are installed
        directly; otherwise, with ``workers > 1``, every primary's set is
        prebuilt across a process pool.  With neither, construction stays
        lazy per cluster exactly as before.
        """
        from repro.storage.cache import ScenarioCache, resolve_cache_dir

        config = self._scenario.config
        cache_root = resolve_cache_dir(config.cache_dir)
        cache = (
            ScenarioCache(cache_root)
            if cache_root is not None and self._scenario.cacheable
            else None
        )
        if cache is not None:
            cached = cache.load_close_sets(config, self._config)
            if cached is not None:
                obs.counter("cache.close_sets.hits").inc()
                for idx, close_set in cached.items():
                    group = self._surrogates.get(idx)
                    if group is not None:
                        group[0]._close_set = close_set
                return
            obs.counter("cache.close_sets.misses").inc()
        workers = resolve_workers(config.workers)
        if cache is None and workers <= 1:
            return  # lazy construction, the original behaviour
        built = self.prebuild_close_sets(workers)
        if cache is not None:
            cache.save_close_sets(config, self._config, built)

    def prebuild_close_sets(
        self, workers: Optional[int] = None
    ) -> Dict[int, CloseClusterSet]:
        """Build every primary surrogate's close set, returning them all.

        Each cluster's valley-free BFS is independent given the AS graph,
        so with ``workers > 1`` the builds fan out over a fork-start
        process pool (children inherit the system read-only); results are
        identical to lazy serial construction.
        """
        count = resolve_workers(
            self._scenario.config.workers if workers is None else workers
        )
        pending = [
            idx
            for idx, group in sorted(self._surrogates.items())
            if group[0]._close_set is None
        ]
        prebuild_span = obs.span(
            "asap.prebuild_close_sets", pending=len(pending), workers=count
        )
        with prebuild_span:
            return self._prebuild_pending(pending, count)

    def _prebuild_pending(
        self, pending: List[int], count: int
    ) -> Dict[int, CloseClusterSet]:
        if count > 1 and len(pending) > 1 and fork_available():
            if self._use_flat_close_sets:
                # Materialize the CSR export once pre-fork so every pool
                # child inherits it copy-on-write instead of rebuilding it.
                self._flat_builder_instance()
            global _PREBUILD_SYSTEM
            _PREBUILD_SYSTEM = self
            try:
                blocks = run_forked(
                    _build_close_set_chunk,
                    chunked(pending, count * 4),
                    processes=count,
                )
            finally:
                _PREBUILD_SYSTEM = None
            for block in blocks:
                for idx, close_set in block:
                    self._surrogates[idx][0]._close_set = close_set
        else:
            for idx in pending:
                self._surrogates[idx][0].close_set()
        return {idx: group[0].close_set() for idx, group in self._surrogates.items()}

    # -- calling ------------------------------------------------------------------

    def close_set(self, cluster_index: int) -> CloseClusterSet:
        """The (cached) close cluster set of a cluster."""
        return self.surrogate(cluster_index).close_set()

    def call(self, caller_ip: IPv4Address, callee_ip: IPv4Address) -> ASAPSession:
        """Run one VoIP session between two end hosts.

        The caller pings the callee first; only when the direct RTT
        misses the threshold does relay selection run (paper Fig. 8).
        """
        caller_cluster = self.cluster_of_ip(caller_ip)
        callee_cluster = self.cluster_of_ip(callee_ip)
        self.sessions_run += 1

        direct = self._view.rtt_cell(caller_cluster, callee_cluster)
        session = ASAPSession(
            caller=caller_ip,
            callee=callee_ip,
            caller_cluster=caller_cluster,
            callee_cluster=callee_cluster,
            direct_rtt_ms=direct,
            relay_needed=not (np.isfinite(direct) and direct < self._config.lat_threshold_ms),
        )
        obs.counter("asap.sessions").inc()
        if not session.relay_needed:
            return session

        obs.counter("asap.sessions.relay_needed").inc()
        with obs.span("asap.select_close_relay", level="debug"):
            s1 = self.surrogate(caller_cluster, requester=caller_ip).serve_close_set()
            s2 = self.surrogate(callee_cluster, requester=callee_ip).serve_close_set()
            selection = select_close_relay(
                s1,
                s2,
                cluster_size=self.online_size,
                close_set_of=lambda idx: self.surrogate(
                    idx, requester=caller_ip
                ).serve_close_set(),
                config=self._config,
            )
        session.selection = selection
        session.best_relay_rtt_ms = selection.best_rtt_ms()
        obs.counter("asap.select.messages").inc(selection.messages)
        obs.counter("asap.select.quality_paths").inc(selection.quality_paths)
        obs.counter("asap.select.one_hop_ips").inc(selection.one_hop_ips)
        obs.counter("asap.select.two_hop_pairs").inc(selection.two_hop_pairs)
        return session

    # -- accounting ------------------------------------------------------------------

    def maintenance_messages(self) -> int:
        """Total probe traffic spent building all materialized close sets."""
        return sum(
            member.maintenance_messages
            for group in self._surrogates.values()
            for member in group
        )


#: Shared state slot for fork-start close-set prebuild workers.
_PREBUILD_SYSTEM: Optional[ASAPSystem] = None


def _build_close_set_chunk(indices: List[int]):
    """Pool worker: construct the close sets of one chunk of clusters."""
    system = _PREBUILD_SYSTEM
    out = []
    for idx in indices:
        primary = system._surrogates[idx][0]
        if primary.fast_builder is not None:
            built = primary.fast_builder(idx, primary.asn)
        else:
            built = construct_close_cluster_set(
                own_cluster=idx,
                own_as=primary.asn,
                graph=primary.graph,
                clusters_in_as=system.clusters_in_as,
                lat=system._probe_lat,
                loss=system._probe_loss,
                config=system._config,
            )
        out.append((idx, built))
    return out
