"""``construct-close-cluster-set()`` — paper Fig. 9.

Runs on a cluster surrogate ``s``: breadth-first search from s's AS over
the annotated AS graph under the valley-free constraint, up to ``k``
hops.  Every cluster discovered in a visited AS is probed (surrogate to
surrogate RTT and loss); clusters passing the thresholds join the close
cluster set.  Expansion continues through an AS only while the
measurements there still pass — latT/lossT "stop path expansion".

ASes that host no online cluster (transit networks) cannot be probed and
do not bound the search; only the hop limit stops expansion through them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.bgp.asgraph import ASGraph, _PHASE_DOWN, _PHASE_UP
from repro.core.config import ASAPConfig
from repro.errors import ProtocolError

# lat(c_own, c_other) and loss(c_own, c_other) between cluster surrogates,
# by cluster matrix index; None when the probe gets no answer.
LatencyProbe = Callable[[int, int], Optional[float]]
LossProbe = Callable[[int, int], Optional[float]]


@dataclass(frozen=True)
class CloseClusterEntry:
    """One member of a close cluster set, with its measured path metrics."""

    cluster: int        # matrix index of the member cluster
    rtt_ms: float       # measured surrogate-to-surrogate RTT
    loss: float         # measured one-way loss rate
    as_hops: int        # valley-free BFS depth at which it was found


@dataclass
class CloseClusterSet:
    """The close cluster set of one cluster (keyed by matrix index)."""

    owner: int
    entries: Dict[int, CloseClusterEntry] = field(default_factory=dict)
    probe_messages: int = 0       # maintenance traffic spent building it
    ases_visited: int = 0
    #: Probe messages split by the AS whose clusters were probed — the
    #: trace layer's L2/L4 attribution (which AS absorbed the probing).
    probes_by_as: Dict[int, int] = field(default_factory=dict)

    def __contains__(self, cluster: int) -> bool:
        return cluster in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def rtt_to(self, cluster: int) -> float:
        try:
            return self.entries[cluster].rtt_ms
        except KeyError:
            raise ProtocolError(
                f"cluster {cluster} not in close set of {self.owner}"
            ) from None

    def clusters(self) -> List[int]:
        return sorted(self.entries)


def construct_close_cluster_set(
    own_cluster: int,
    own_as: int,
    graph: ASGraph,
    clusters_in_as: Callable[[int], List[int]],
    lat: LatencyProbe,
    loss: LossProbe,
    config: Optional[ASAPConfig] = None,
    meta_out: Optional[Dict[int, Tuple[int, bool]]] = None,
) -> CloseClusterSet:
    """Build the close cluster set for ``own_cluster`` whose AS is ``own_as``.

    ``clusters_in_as`` maps an AS number to the matrix indices of online
    clusters it hosts.  ``lat``/``loss`` probe the direct path between
    this surrogate and another cluster's surrogate (2 messages per
    probed cluster are accounted).

    The BFS is *level-synchronous*: each hop level discovers its new
    (AS, phase) states as a set, probes newly seen ASes in ascending
    ASN order, and only then expands.  Expansion rights are a property
    of the AS — an AS whose probes all failed blocks every phase state
    through it.  This makes the result independent of neighbor
    iteration order, which is what lets the vectorized flat-array
    builder (:mod:`repro.worldarrays.closesets`) reproduce it
    bit-for-bit.

    ``meta_out``, when given, receives ``{asn: (depth, expands)}`` for
    every visited AS — the BFS state the incremental maintainer
    (:mod:`repro.control.maintainer`) needs to patch the set in place
    when cluster membership changes.
    """
    if config is None:
        config = ASAPConfig()
    result = CloseClusterSet(owner=own_cluster)
    if own_as not in graph:
        # The surrogate's AS is unknown to the (inferred) graph — can
        # happen when inference dropped it; the close set is then empty.
        return result

    # Own cluster and co-located clusters are trivially close (intra-AS).
    for cluster in clusters_in_as(own_as):
        if cluster == own_cluster:
            result.entries[cluster] = CloseClusterEntry(cluster, 0.0, 0.0, 0)
            continue
        measured = _probe(result, own_cluster, cluster, own_as, lat, loss)
        if measured is not None:
            rtt, lost = measured
            if rtt < config.lat_threshold_ms and lost < config.loss_threshold:
                result.entries[cluster] = CloseClusterEntry(cluster, rtt, lost, 0)
    result.ases_visited = 1

    # Valley-free BFS outward, level by level, with threshold-based
    # pruning per visited AS (latT/lossT "stop path expansion").
    expands: Dict[int, bool] = {own_as: True}
    if meta_out is not None:
        meta_out[own_as] = (0, True)
    visited: Set[Tuple[int, int]] = {(own_as, _PHASE_UP)}
    frontier: List[Tuple[int, int]] = [(own_as, _PHASE_UP)]
    for depth in range(1, config.k_hops + 1):
        discovered: Set[Tuple[int, int]] = set()
        for node, phase in frontier:
            if not expands[node]:
                continue
            for state in _steps(graph, node, phase, config.valley_free):
                if state not in visited:
                    visited.add(state)
                    discovered.add(state)
        if not discovered:
            break
        for asn in sorted({a for a, _ in discovered} - expands.keys()):
            result.ases_visited += 1
            expands[asn] = _visit_as(
                result, asn, depth, own_cluster, clusters_in_as, lat, loss, config
            )
            if meta_out is not None:
                meta_out[asn] = (depth, expands[asn])
        frontier = sorted(discovered)

    emit_build_observability(result, own_as)
    return result


def emit_build_observability(result: CloseClusterSet, own_as: int) -> None:
    """Counters, histograms, and the trace span of one close-set build.

    Shared by the reference path above and the flat-array builder so the
    two emit byte-identical observability for identical results.
    """
    from repro import obs

    obs.counter("close_set.built").inc()
    obs.counter("close_set.probe_messages").inc(result.probe_messages)
    obs.histogram("close_set.size").observe(len(result))
    obs.histogram("close_set.ases_visited").observe(result.ases_visited)
    tracer = obs.tracer()
    if tracer:
        # Builds run analytically (zero simulated time), so the span is
        # instantaneous; it nests under whatever selection scope is
        # ambient, or starts its own trace for standalone/prebuilds.
        now = tracer.now()
        parent = tracer.active
        build = (
            parent.child("close_set.build", now, owner=result.owner, asn=own_as)
            if parent
            else tracer.begin("close_set.build", now, owner=result.owner, asn=own_as)
        )
        build.end(
            now,
            size=len(result),
            probe_messages=result.probe_messages,
            ases_visited=result.ases_visited,
            probes_by_as={str(k): v for k, v in sorted(result.probes_by_as.items())},
        )


def _visit_as(
    result: CloseClusterSet,
    asn: int,
    depth: int,
    own_cluster: int,
    clusters_in_as: Callable[[int], List[int]],
    lat: LatencyProbe,
    loss: LossProbe,
    config: ASAPConfig,
) -> bool:
    """Probe every cluster in a newly visited AS.

    Returns whether the BFS may expand *through* this AS: transit ASes
    (no clusters) always allow expansion; populated ASes allow it only
    if at least one of their clusters passed the thresholds.
    """
    clusters = clusters_in_as(asn)
    if not clusters:
        return True
    any_passed = False
    for cluster in clusters:
        measured = _probe(result, own_cluster, cluster, asn, lat, loss)
        if measured is None:
            continue
        rtt, lost = measured
        if rtt < config.lat_threshold_ms and lost < config.loss_threshold:
            if cluster not in result.entries:
                result.entries[cluster] = CloseClusterEntry(cluster, rtt, lost, depth)
            any_passed = True
    return any_passed


def _probe(
    result: CloseClusterSet,
    own_cluster: int,
    other: int,
    asn: int,
    lat: LatencyProbe,
    loss: LossProbe,
) -> Optional[Tuple[float, float]]:
    """One surrogate-to-surrogate measurement (request + response)."""
    result.probe_messages += 2
    result.probes_by_as[asn] = result.probes_by_as.get(asn, 0) + 2
    rtt = lat(own_cluster, other)
    lost = loss(own_cluster, other)
    if rtt is None or lost is None:
        return None
    return rtt, lost


def _steps(graph: ASGraph, node: int, phase: int, valley_free: bool):
    """Neighbor moves; falls back to unconstrained BFS when disabled."""
    if valley_free:
        yield from graph._valley_free_steps(node, phase)
        return
    for neighbor in graph.neighbors(node):
        yield neighbor, phase
