"""Load-aware relay assignment (paper §6.2's final pick).

After select-close-relay returns candidates, the endpoints "pick the
most suitable relay nodes" by "comprehensively considering factors
including traffic load conditions and reliabilities of the close relay
nodes as well as RTTs and packet loss rates".  This module implements
that final step as a system-wide assignment service:

- each relay IP has a concurrent-session capacity (from its published
  bandwidth: a relayed G.729 call costs ~30 kbps each way);
- a session picks the least-loaded relay among the candidates within a
  latency slack of the best (quality first, then load);
- releases return capacity when calls end.

The scalability consequence the paper implies: ASAP's enormous
candidate sets let load spread thin, while a fixed fleet (DEDI)
concentrates every session on the same 80 nodes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.relay_selection import RelaySelection
from repro.errors import ProtocolError
from repro.measurement.matrix import DelegateMatrices
from repro.netaddr import IPv4Address
from repro.topology.clustering import ClusterIndex
from repro.util.rng import derive_rng

#: Bandwidth cost of relaying one call, both directions (kbps).
RELAY_SESSION_KBPS = 64.0


def relay_capacity(bandwidth_kbps: float) -> int:
    """Concurrent relayed calls a host can carry with half its uplink."""
    return max(1, int(bandwidth_kbps * 0.5 / RELAY_SESSION_KBPS))


@dataclass
class RelayAssignment:
    """One session's assigned relay."""

    session_id: int
    relay_ip: IPv4Address
    relay_cluster: int
    relay_rtt_ms: float


class RelayAssignmentService:
    """Tracks per-relay load and performs the §6.2 final pick."""

    def __init__(
        self,
        clusters: ClusterIndex,
        matrices: DelegateMatrices,
        latency_slack_ms: float = 30.0,
        seed: int = 0,
    ) -> None:
        if latency_slack_ms < 0:
            raise ProtocolError("latency_slack_ms must be non-negative")
        self._clusters = clusters
        self._matrices = matrices
        self._slack = latency_slack_ms
        self._rng = derive_rng(seed, "relay-assignment")
        self.load: Counter = Counter()            # relay IP → active sessions
        self._assignments: Dict[int, RelayAssignment] = {}

    # -- capacity ---------------------------------------------------------

    def capacity_of(self, ip: IPv4Address) -> int:
        host = self._clusters.cluster_of(ip)
        for member in host.hosts:
            if member.ip == ip:
                return relay_capacity(member.info.bandwidth_kbps)
        raise ProtocolError(f"unknown relay host {ip}")

    def utilization_of(self, ip: IPv4Address) -> float:
        return self.load[ip] / self.capacity_of(ip)

    # -- assignment ---------------------------------------------------------

    def assign(
        self,
        session_id: int,
        selection: RelaySelection,
        max_candidate_clusters: int = 8,
    ) -> Optional[RelayAssignment]:
        """Pick the least-loaded relay IP among near-best candidates.

        Considers one-hop candidate clusters within ``latency_slack_ms``
        of the best candidate, and within them every member IP with
        spare capacity; picks the lowest-utilization IP (ties broken
        randomly but deterministically per session).  Returns None when
        no candidate has spare capacity.
        """
        if session_id in self._assignments:
            raise ProtocolError(f"session {session_id} already assigned")
        if not selection.one_hop:
            return None
        ranked = sorted(selection.one_hop, key=lambda c: c.relay_rtt_ms)
        best_rtt = ranked[0].relay_rtt_ms
        eligible = [
            c for c in ranked[:max_candidate_clusters]
            if c.relay_rtt_ms <= best_rtt + self._slack
        ]
        candidates: List[Tuple[float, float, IPv4Address, int, float]] = []
        for cand in eligible:
            prefix = self._matrices.prefixes[cand.cluster]
            cluster = self._clusters.clusters.get(prefix)
            if cluster is None:
                continue
            for host in cluster.hosts:
                cap = relay_capacity(host.info.bandwidth_kbps)
                if self.load[host.ip] >= cap:
                    continue
                utilization = self.load[host.ip] / cap
                jitter = float(self._rng.random()) * 1e-6
                candidates.append(
                    (utilization, jitter, host.ip, cand.cluster, cand.relay_rtt_ms)
                )
        if not candidates:
            return None
        utilization, _, ip, cluster_idx, rtt = min(candidates)
        self.load[ip] += 1
        assignment = RelayAssignment(
            session_id=session_id,
            relay_ip=ip,
            relay_cluster=cluster_idx,
            relay_rtt_ms=rtt,
        )
        self._assignments[session_id] = assignment
        return assignment

    def release(self, session_id: int) -> None:
        """End a session and return its relay's capacity."""
        assignment = self._assignments.pop(session_id, None)
        if assignment is None:
            raise ProtocolError(f"session {session_id} has no assignment")
        self.load[assignment.relay_ip] -= 1
        if self.load[assignment.relay_ip] <= 0:
            del self.load[assignment.relay_ip]

    # -- reporting --------------------------------------------------------------

    def active_sessions(self) -> int:
        return len(self._assignments)

    def distinct_relays(self) -> int:
        return len(self.load)

    def max_load(self) -> int:
        return max(self.load.values(), default=0)

    def load_distribution(self) -> List[int]:
        return sorted(self.load.values(), reverse=True)
