"""ASAP protocol parameters (paper Sections 6-7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True, kw_only=True)
class ASAPConfig:
    """Tunables of the ASAP protocol.

    Defaults follow the paper: ``k = 4`` AS hops for the close-cluster
    BFS ("more than 90% of the sessions with direct IP routing RTTs below
    300 ms have no more than 4 AS hops"), ``lat_threshold_ms`` close to
    300 ms, ``size_threshold = 300`` candidate relay IPs before two-hop
    selection starts, and a 40 ms round-trip relay delay per hop.
    """

    k_hops: int = 4
    lat_threshold_ms: float = 300.0
    loss_threshold: float = 0.05
    size_threshold: int = 300
    relay_delay_rtt_ms: float = 40.0
    bootstrap_count: int = 3
    # Cap on how many one-hop candidate surrogates a caller queries for
    # their close sets during two-hop selection (None = query all); the
    # paper suggests probing "a fraction of candidate relay nodes" to
    # bound overhead.
    max_two_hop_queries: Optional[int] = None
    # Valley-free constraint in the close-cluster BFS (ablation knob —
    # the paper always keeps it on).
    valley_free: bool = True
    # §6.3: "For a few large clusters containing close to 1,000 online
    # end hosts, we can select multiple surrogates in them to share the
    # possible heavy load."  One surrogate per this many cluster hosts.
    hosts_per_surrogate: int = 500

    def __post_init__(self) -> None:
        if self.k_hops < 0:
            raise ConfigurationError("k_hops must be >= 0")
        if self.lat_threshold_ms <= 0:
            raise ConfigurationError("lat_threshold_ms must be positive")
        if not 0.0 < self.loss_threshold <= 1.0:
            raise ConfigurationError("loss_threshold must be in (0, 1]")
        if self.size_threshold < 0:
            raise ConfigurationError("size_threshold must be >= 0")
        if self.relay_delay_rtt_ms < 0:
            raise ConfigurationError("relay_delay_rtt_ms must be >= 0")
        if self.bootstrap_count < 1:
            raise ConfigurationError("bootstrap_count must be >= 1")
        if self.max_two_hop_queries is not None and self.max_two_hop_queries < 0:
            raise ConfigurationError("max_two_hop_queries must be >= 0 or None")
        if self.hosts_per_surrogate < 1:
            raise ConfigurationError("hosts_per_surrogate must be >= 1")


def derive_k_hops(
    matrices,
    threshold_ms: float = 300.0,
    quantile: float = 90.0,
    minimum: int = 2,
    maximum: int = 8,
) -> int:
    """Derive the BFS hop limit by the paper's own rule.

    Section 6.2 sets k = 4 because "more than 90% of the sessions with
    direct IP routing RTTs below 300 ms have no more than 4 AS hops" in
    the paper's 2005 measurements.  Applied to any substrate: k is the
    90th percentile of AS hop counts among sub-threshold paths.  Our
    generated topologies have slightly longer AS paths than the 2005
    Internet, so this typically yields 5-6.

    Accepts dense :class:`~repro.measurement.matrix.DelegateMatrices`
    (the verbatim reference computation) or any streamed view exposing
    ``iter_column_blocks`` without dense arrays — hop counts are then
    folded into a histogram block by block and the percentile is
    computed over it, value-identical to ``np.percentile`` on the
    materialized hop multiset.
    """
    if not hasattr(matrices, "rtt_ms"):
        return _derive_k_hops_streamed(matrices, threshold_ms, quantile, minimum, maximum)
    mask = np.isfinite(matrices.rtt_ms) & (matrices.rtt_ms < threshold_ms)
    mask &= matrices.as_hops >= 0
    hops = matrices.as_hops[mask]
    if hops.size == 0:
        return 4
    derived = int(np.percentile(hops, quantile))
    return max(minimum, min(maximum, derived))


def _derive_k_hops_streamed(
    view, threshold_ms: float, quantile: float, minimum: int, maximum: int
) -> int:
    """Hop-count percentile over a streamed view, one block at a time.

    Hop values are tiny non-negative ints, so the full multiset folds
    into a histogram; :func:`_percentile_from_histogram` then replicates
    ``np.percentile``'s linear interpolation over it exactly.
    """
    counts = np.zeros(64, dtype=np.int64)
    for _, rtt, _, hops in view.iter_column_blocks():
        mask = np.isfinite(rtt) & (rtt < threshold_ms) & (hops >= 0)
        values = hops[mask]
        if values.size:
            high = int(values.max())
            if high >= len(counts):
                counts = np.concatenate(
                    [counts, np.zeros(high + 1 - len(counts), dtype=np.int64)]
                )
            counts += np.bincount(values, minlength=len(counts)).astype(np.int64)[
                : len(counts)
            ]
    total = int(counts.sum())
    if total == 0:
        return 4
    derived = int(_percentile_from_histogram(counts, total, quantile))
    return max(minimum, min(maximum, derived))


def _percentile_from_histogram(counts: np.ndarray, total: int, quantile: float) -> float:
    """``np.percentile(values, quantile)`` (linear method) where
    ``values`` is the sorted multiset described by ``counts`` — bitwise
    the same float, including numpy's monotonic two-sided lerp."""
    position = (total - 1) * quantile / 100.0
    lo = int(np.floor(position))
    hi = min(lo + 1, total - 1)
    cumulative = np.cumsum(counts)
    a = float(np.searchsorted(cumulative, lo, side="right"))
    b = float(np.searchsorted(cumulative, hi, side="right"))
    t = position - lo
    delta = b - a
    result = a + t * delta
    if t >= 0.5:
        result = b - delta * (1.0 - t)
    return result
