"""Close-cluster-set maintenance under changing network conditions.

Close cluster sets are measurements, and measurements go stale: BGP
tables "do not change frequently" (§6.3) but congestion does.  This
module quantifies the staleness problem and the refresh remedy:

- :func:`staleness` — with the network re-weathered, what fraction of a
  close set's entries no longer meet the thresholds, and what fraction
  of now-qualifying clusters are missing?
- :class:`MaintenanceStudy` — run the same latent sessions before and
  after a weather change, with and without surrogate refresh, measuring
  how much quality stale sets cost and what a refresh round costs in
  probe traffic.

This is an operational extension beyond the paper's evaluation (its
simulation is a single snapshot), but directly implied by the protocol
description: surrogates "periodically" rebuild their sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ASAPConfig
from repro.core.protocol import ASAPSystem
from repro.errors import EvaluationError
from repro.evaluation.sessions import Session
from repro.measurement.conditions import ConditionsConfig, generate_conditions
from repro.measurement.latency import LatencyModel
from repro.measurement.matrix import compute_delegate_matrices
from repro.scenario import Scenario


@dataclass(frozen=True)
class StalenessReport:
    """How stale one close set is against fresh measurements."""

    cluster: int
    entries: int
    violating: int        # members whose fresh RTT/loss now fail thresholds
    missing: int          # now-qualifying clusters absent from the set

    @property
    def violation_rate(self) -> float:
        return self.violating / self.entries if self.entries else 0.0


def reweather(scenario: Scenario, seed: int) -> Scenario:
    """The same world under freshly drawn network conditions.

    Topology, BGP data, and the peer population stay fixed; congestion,
    failures and loss are re-drawn (a different day on the same
    Internet).  Matrices recompute lazily.
    """
    conditions = generate_conditions(
        scenario.topology, replace(scenario.config.conditions, seed=seed)
    )
    latency = LatencyModel(
        scenario.topology, conditions, scenario.population, seed=scenario.config.seed
    )
    return Scenario(
        config=scenario.config,
        topology=scenario.topology,
        allocation=scenario.allocation,
        routing_table=scenario.routing_table,
        prefix_table=scenario.prefix_table,
        inferred_graph=scenario.inferred_graph,
        conditions=conditions,
        population=scenario.population,
        clusters=scenario.clusters,
        latency=latency,
    )


def staleness(
    stale_system: ASAPSystem,
    fresh_scenario: Scenario,
    cluster_index: int,
) -> StalenessReport:
    """Score one cluster's (stale) close set against fresh measurements."""
    config = stale_system.config
    stale_set = stale_system.close_set(cluster_index)
    fresh = fresh_scenario.matrices
    if fresh.count != len(fresh.prefixes):
        raise EvaluationError("inconsistent fresh matrices")

    violating = 0
    for entry in stale_set.entries.values():
        rtt = float(fresh.rtt_ms[cluster_index, entry.cluster])
        loss = float(fresh.loss[cluster_index, entry.cluster])
        if not (np.isfinite(rtt) and rtt < config.lat_threshold_ms and loss < config.loss_threshold):
            violating += 1

    # Missing: clusters that would qualify now (fresh RTT under the
    # threshold) but are not in the stale set.  Measured against the
    # simple threshold criterion, not the BFS reachability, so this is
    # an upper bound on what a rebuild could add.
    row = fresh.rtt_ms[cluster_index]
    qualifies = np.isfinite(row) & (row < config.lat_threshold_ms)
    qualifies[cluster_index] = False
    missing = int(
        sum(1 for idx in np.nonzero(qualifies)[0] if int(idx) not in stale_set.entries)
    )
    return StalenessReport(
        cluster=cluster_index,
        entries=len(stale_set),
        violating=violating,
        missing=missing,
    )


@dataclass
class MaintenanceOutcome:
    """Quality/cost of one maintenance policy on the re-weathered world."""

    policy: str
    rescued_fraction: float
    median_best_rtt_ms: float
    maintenance_messages: int


def run_maintenance_study(
    scenario: Scenario,
    sessions: Sequence[Session],
    weather_seed: int = 1,
    config: Optional[ASAPConfig] = None,
) -> Tuple[List[MaintenanceOutcome], List[StalenessReport]]:
    """Compare stale vs refreshed close sets after a weather change.

    Builds the system on the original scenario (close sets measured
    under the old weather), re-weathers the world, then evaluates the
    given latent sessions three ways: with stale sets, with refreshed
    sets, and with a fresh system built natively on the new weather
    (the upper bound).
    """
    if config is None:
        from repro.core.config import derive_k_hops

        config = ASAPConfig(k_hops=derive_k_hops(scenario.matrices))
    fresh_scenario = reweather(scenario, weather_seed)

    # Stale: close sets built under old weather, sessions scored under
    # the new one.  The stale system's selection uses old RTT beliefs;
    # realized path quality comes from the fresh matrices.
    stale_system = ASAPSystem(scenario, config)
    fresh_matrices = fresh_scenario.matrices

    def evaluate(system: ASAPSystem, realized) -> Tuple[float, float]:
        """Score sessions under the *fresh* weather.

        The ping is live (direct RTT always reflects current weather);
        only the close sets may be stale.  A session counts as rescued
        when its realized best path — direct if good, else the
        believed-best relay realized under the fresh weather — meets
        the threshold.
        """
        from repro.core.relay_selection import select_close_relay

        rescued = 0
        bests: List[float] = []
        for session in sessions:
            ca, cb = session.caller_cluster, session.callee_cluster
            fresh_direct = float(realized.rtt_ms[ca, cb])
            if np.isfinite(fresh_direct) and fresh_direct < config.lat_threshold_ms:
                rescued += 1
                bests.append(fresh_direct)
                continue
            s1 = system.surrogate(ca, requester=session.caller).serve_close_set()
            s2 = system.surrogate(cb, requester=session.callee).serve_close_set()
            selection = select_close_relay(
                s1,
                s2,
                cluster_size=lambda idx: 1,
                close_set_of=lambda idx: system.surrogate(idx).serve_close_set(),
                config=config,
            )
            if not selection.one_hop:
                continue
            believed = min(selection.one_hop, key=lambda c: c.relay_rtt_ms)
            realized_rtt = realized.one_hop_rtt(
                ca, believed.cluster, cb, config.relay_delay_rtt_ms
            )
            if np.isfinite(realized_rtt):
                bests.append(realized_rtt)
                if realized_rtt < config.lat_threshold_ms:
                    rescued += 1
        fraction = rescued / len(sessions) if sessions else 0.0
        median = float(np.median(bests)) if bests else float("inf")
        return fraction, median

    outcomes: List[MaintenanceOutcome] = []
    stale_quality = evaluate(stale_system, fresh_matrices)
    outcomes.append(
        MaintenanceOutcome(
            policy="stale",
            rescued_fraction=stale_quality[0],
            median_best_rtt_ms=stale_quality[1],
            maintenance_messages=stale_system.maintenance_messages(),
        )
    )

    # Refresh: rebuild the sets against the fresh world's measurements.
    refreshed_system = ASAPSystem(fresh_scenario, config)
    refreshed_quality = evaluate(refreshed_system, fresh_matrices)
    outcomes.append(
        MaintenanceOutcome(
            policy="refreshed",
            rescued_fraction=refreshed_quality[0],
            median_best_rtt_ms=refreshed_quality[1],
            maintenance_messages=refreshed_system.maintenance_messages(),
        )
    )

    # Staleness reports for the session endpoint clusters.
    reports = [
        staleness(stale_system, fresh_scenario, session.caller_cluster)
        for session in list(sessions)[:20]
    ]
    return outcomes, reports
