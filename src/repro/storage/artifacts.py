"""Binary/tabular artifact persistence: matrices and experiment records.

- Delegate matrices round-trip through ``.npz`` (prefixes stored as
  strings, arrays natively) so a measured dataset can be reused across
  runs, like the paper replaying its King measurements.
- Per-session method records round-trip through CSV (external analysis)
  and export to JSON (structured archives).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, List, Sequence, Union

import numpy as np

from repro.errors import ReproError
from repro.measurement.matrix import DelegateMatrices
from repro.netaddr import IPv4Prefix

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.evaluation.metrics import MethodRecord

PathLike = Union[str, Path]

_MATRIX_FORMAT_VERSION = 1


def save_matrices(path: PathLike, matrices: DelegateMatrices) -> None:
    """Serialize delegate matrices to a ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        version=np.array([_MATRIX_FORMAT_VERSION]),
        prefixes=np.array([str(p) for p in matrices.prefixes]),
        asn_of=matrices.asn_of,
        sizes=matrices.sizes,
        rtt_ms=matrices.rtt_ms,
        loss=matrices.loss,
        as_hops=matrices.as_hops,
    )


def load_matrices(path: PathLike) -> DelegateMatrices:
    """Load delegate matrices saved by :func:`save_matrices`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        version = int(archive["version"][0])
        if version != _MATRIX_FORMAT_VERSION:
            raise ReproError(f"unsupported matrix archive version {version}")
        prefixes = [IPv4Prefix.from_string(str(p)) for p in archive["prefixes"]]
        return DelegateMatrices(
            prefixes=prefixes,
            index_of={p: i for i, p in enumerate(prefixes)},
            asn_of=archive["asn_of"].copy(),
            sizes=archive["sizes"].copy(),
            rtt_ms=archive["rtt_ms"].copy(),
            loss=archive["loss"].copy(),
            as_hops=archive["as_hops"].copy(),
        )


_CSV_FIELDS = (
    "method",
    "session_id",
    "quality_paths",
    "best_rtt_ms",
    "highest_mos",
    "messages",
    "one_hop_quality_paths",
)


def save_records_csv(path: PathLike, records: Sequence[MethodRecord]) -> int:
    """Write method records to CSV; returns the row count."""
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(
                {
                    "method": record.method,
                    "session_id": record.session_id,
                    "quality_paths": record.quality_paths,
                    "best_rtt_ms": "" if record.best_rtt_ms is None else record.best_rtt_ms,
                    "highest_mos": "" if record.highest_mos is None else record.highest_mos,
                    "messages": record.messages,
                    "one_hop_quality_paths": (
                        "" if record.one_hop_quality_paths is None
                        else record.one_hop_quality_paths
                    ),
                }
            )
    return len(records)


def load_records_csv(path: PathLike) -> List["MethodRecord"]:
    """Read method records written by :func:`save_records_csv`."""
    from repro.evaluation.metrics import MethodRecord

    records: List[MethodRecord] = []
    with Path(path).open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(_CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ReproError(f"records CSV missing columns: {sorted(missing)}")
        for row in reader:
            records.append(
                MethodRecord(
                    method=row["method"],
                    session_id=int(row["session_id"]),
                    quality_paths=int(row["quality_paths"]),
                    best_rtt_ms=float(row["best_rtt_ms"]) if row["best_rtt_ms"] else None,
                    highest_mos=float(row["highest_mos"]) if row["highest_mos"] else None,
                    messages=int(row["messages"]),
                    one_hop_quality_paths=(
                        int(row["one_hop_quality_paths"])
                        if row["one_hop_quality_paths"]
                        else None
                    ),
                )
            )
    return records


def save_records_json(path: PathLike, records: Sequence[MethodRecord]) -> int:
    """Write method records as a JSON array; returns the row count."""
    payload = [
        {
            "method": r.method,
            "session_id": r.session_id,
            "quality_paths": r.quality_paths,
            "best_rtt_ms": r.best_rtt_ms,
            "highest_mos": r.highest_mos,
            "messages": r.messages,
            "one_hop_quality_paths": r.one_hop_quality_paths,
        }
        for r in records
    ]
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return len(records)
