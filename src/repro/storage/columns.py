"""Chunked, resumable on-disk storage for streamed delegate columns.

The streaming engine never materializes an N×N delegate matrix; it
assembles destination-column blocks on demand and spills them here.  A
store is a directory of per-chunk ``.npy`` files plus a ``meta.json``
identity document:

- chunks are fixed-width column blocks ``[start, start+chunk)`` (the
  last one ragged), three arrays each (``rtt``/``loss``/``hops``), all
  written atomically (tmp file + ``os.replace``) so a killed run never
  leaves a torn chunk;
- the identity key is content-addressed — callers derive it from the
  same canonical scenario hash :mod:`repro.storage.cache` uses, so a
  store is only ever re-read by the exact world that wrote it; a
  mismatched ``meta.json`` (different key, N, or chunk width) empties
  the store rather than poisoning a resumed run;
- reads come back memory-mapped (``np.load(mmap_mode="r")``): a
  100k-tier sweep touches pages, not gigabytes.

``np.save``/``np.load`` round-trip float64/int64 arrays bit-exactly,
which keeps the spill path inside the engine's bit-identical contract.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = ["COLUMN_STORE_SCHEMA", "ColumnStore"]

#: Bump when the on-disk layout changes; stores of other versions are
#: treated as foreign and cleared on open.
COLUMN_STORE_SCHEMA = 1

_ARRAYS = ("rtt", "loss", "hops")


class ColumnStore:
    """Per-chunk spill store for streamed delegate-matrix columns."""

    def __init__(self, root: Union[str, Path], key: str, n: int, chunk: int) -> None:
        if n < 1 or chunk < 1:
            raise ValueError("ColumnStore needs n >= 1 and chunk >= 1")
        self.root = Path(root)
        self.key = key
        self.n = int(n)
        self.chunk = int(chunk)
        self.root.mkdir(parents=True, exist_ok=True)
        self._validate_or_reset()

    # -- identity ------------------------------------------------------

    def _meta_path(self) -> Path:
        return self.root / "meta.json"

    def _meta_document(self) -> dict:
        return {
            "schema": COLUMN_STORE_SCHEMA,
            "key": self.key,
            "n": self.n,
            "chunk": self.chunk,
        }

    def _validate_or_reset(self) -> None:
        """Adopt a matching store; clear anything else."""
        meta_path = self._meta_path()
        if meta_path.exists():
            try:
                found = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                found = None
            if found == self._meta_document():
                return
            self.clear()
        _atomic_write(meta_path, json.dumps(self._meta_document(), sort_keys=True))

    def clear(self) -> None:
        """Remove every chunk (and the identity document)."""
        for path in self.root.glob("*.npy"):
            path.unlink(missing_ok=True)
        self._meta_path().unlink(missing_ok=True)

    # -- chunk geometry ------------------------------------------------

    def starts(self) -> List[int]:
        """Chunk start columns, ascending."""
        return list(range(0, self.n, self.chunk))

    def columns_of(self, start: int) -> np.ndarray:
        """The column indices of the chunk starting at ``start``."""
        return np.arange(start, min(start + self.chunk, self.n), dtype=np.int64)

    def _paths(self, start: int) -> Tuple[Path, ...]:
        return tuple(self.root / f"{name}_{start:08d}.npy" for name in _ARRAYS)

    # -- I/O -----------------------------------------------------------

    def has(self, start: int) -> bool:
        return all(path.exists() for path in self._paths(start))

    def complete(self) -> bool:
        """Whether every chunk of the matrix has been spilled."""
        return all(self.has(start) for start in self.starts())

    def save(self, start: int, rtt: np.ndarray, loss: np.ndarray, hops: np.ndarray) -> None:
        """Atomically persist one column block (N rows × chunk cols)."""
        width = len(self.columns_of(start))
        for name, array in zip(_ARRAYS, (rtt, loss, hops)):
            if array.shape != (self.n, width):
                raise ValueError(
                    f"chunk {start}: {name} block must be {(self.n, width)}, "
                    f"got {array.shape}"
                )
        for path, array in zip(self._paths(start), (rtt, loss, hops)):
            _atomic_save(path, array)

    def load(self, start: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One column block back, memory-mapped read-only."""
        rtt_path, loss_path, hops_path = self._paths(start)
        return (
            np.load(rtt_path, mmap_mode="r"),
            np.load(loss_path, mmap_mode="r"),
            np.load(hops_path, mmap_mode="r"),
        )

    def iter_blocks(
        self,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(cols, rtt, loss, hops)`` for every stored chunk, in
        column order (every chunk must exist)."""
        for start in self.starts():
            rtt, loss, hops = self.load(start)
            yield self.columns_of(start), rtt, loss, hops

    def chunk_count(self) -> Tuple[int, int]:
        """(stored, total) chunk counts — resume progress."""
        stored = sum(1 for start in self.starts() if self.has(start))
        return stored, len(self.starts())


def _atomic_write(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _atomic_save(path: Path, array: np.ndarray) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.save(handle, np.ascontiguousarray(array))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
