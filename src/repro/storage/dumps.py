"""File I/O for BGP RIB dumps and update streams (the text formats of
:mod:`repro.bgp.rib` / :mod:`repro.bgp.updates`)."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from repro.bgp.rib import RIBEntry, format_rib_dump, parse_rib_dump
from repro.bgp.updates import BGPUpdate, parse_update_stream

PathLike = Union[str, Path]


def write_rib_file(path: PathLike, entries: Iterable[RIBEntry]) -> int:
    """Write a RIB dump file; returns the number of routes written."""
    entries = list(entries)
    text = format_rib_dump(entries)
    Path(path).write_text(
        "# repro RIB dump — format: RIB|ts|peer|prefix|as-path|origin\n" + text,
        encoding="utf-8",
    )
    return len(entries)


def read_rib_file(path: PathLike) -> List[RIBEntry]:
    """Parse a RIB dump file (comments and blank lines ignored)."""
    with Path(path).open(encoding="utf-8") as handle:
        return list(parse_rib_dump(handle))


def write_update_file(path: PathLike, updates: Iterable[BGPUpdate]) -> int:
    """Write an update-stream file; returns the number of updates."""
    updates = list(updates)
    lines = [
        "# repro BGP updates — ANNOUNCE|ts|peer|prefix|as-path|origin / WITHDRAW|ts|peer|prefix"
    ]
    lines.extend(update.to_line() for update in updates)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(updates)


def read_update_file(path: PathLike) -> List[BGPUpdate]:
    """Parse an update-stream file."""
    with Path(path).open(encoding="utf-8") as handle:
        return list(parse_update_stream(handle))


def write_asgraph_file(path: PathLike, graph) -> int:
    """Serialize an annotated AS graph (one edge per line).

    Format: ``P2C|provider|customer``, ``P2P|a|b``, ``S2S|a|b`` — the
    artifact a bootstrap disseminates to surrogates (§6.1).  Returns the
    edge count written.
    """
    lines = ["# repro AS graph — P2C|provider|customer / P2P|a|b / S2S|a|b"]
    for asn in graph.ases():
        lines.append(f"AS|{asn}")
    seen = set()
    count = 0
    for a in graph.ases():
        for b in graph.customers(a):
            lines.append(f"P2C|{a}|{b}")
            count += 1
        for b in graph.peers(a):
            key = (min(a, b), max(a, b))
            if key not in seen:
                seen.add(key)
                lines.append(f"P2P|{key[0]}|{key[1]}")
                count += 1
        for b in graph.siblings(a):
            key = (min(a, b), max(a, b), "s")
            if key not in seen:
                seen.add(key)
                lines.append(f"S2S|{key[0]}|{key[1]}")
                count += 1
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return count


def read_asgraph_file(path: PathLike):
    """Parse an AS graph file written by :func:`write_asgraph_file`."""
    from repro.bgp.asgraph import ASGraph
    from repro.errors import BGPParseError

    graph = ASGraph()
    with Path(path).open(encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            try:
                if fields[0] == "AS" and len(fields) == 2:
                    graph.add_as(int(fields[1]))
                elif fields[0] == "P2C" and len(fields) == 3:
                    graph.add_provider_customer(int(fields[1]), int(fields[2]))
                elif fields[0] == "P2P" and len(fields) == 3:
                    graph.add_peer(int(fields[1]), int(fields[2]))
                elif fields[0] == "S2S" and len(fields) == 3:
                    graph.add_sibling(int(fields[1]), int(fields[2]))
                else:
                    raise BGPParseError(f"line {lineno}: malformed AS graph line {line!r}")
            except ValueError as exc:
                raise BGPParseError(f"line {lineno}: {exc}") from exc
    return graph
