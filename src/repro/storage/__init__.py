"""Persistence: BGP dump files, matrix archives, experiment records.

The paper's workflow is file-driven — collected BGP tables, measured
RTT datasets, analysis outputs.  This package gives the library the
same shape: scenarios can export their BGP feed and measured matrices
to disk and reload them later, and experiment records serialize to
CSV/JSON for external analysis.
"""

from repro.storage.dumps import (
    read_asgraph_file,
    read_rib_file,
    read_update_file,
    write_asgraph_file,
    write_rib_file,
    write_update_file,
)
from repro.storage.artifacts import (
    load_matrices,
    load_records_csv,
    save_matrices,
    save_records_csv,
    save_records_json,
)
from repro.storage.cache import (
    SCHEMA_VERSION,
    ScenarioCache,
    resolve_cache_dir,
    scenario_cache_key,
)
from repro.storage.columns import COLUMN_STORE_SCHEMA, ColumnStore

__all__ = [
    "COLUMN_STORE_SCHEMA",
    "ColumnStore",
    "SCHEMA_VERSION",
    "ScenarioCache",
    "load_matrices",
    "load_records_csv",
    "read_asgraph_file",
    "read_rib_file",
    "read_update_file",
    "resolve_cache_dir",
    "save_matrices",
    "scenario_cache_key",
    "save_records_csv",
    "save_records_json",
    "write_asgraph_file",
    "write_rib_file",
    "write_update_file",
]
