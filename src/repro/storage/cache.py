"""Content-addressed on-disk cache of built scenarios and close sets.

Every experiment replays the same simulated worlds: a
:class:`~repro.scenario.ScenarioConfig` plus its seed uniquely determine
the topology, BGP feed, population, latency ground truth and delegate
matrices.  Rebuilding all of that per process is pure waste, so builds
can be persisted once and reloaded byte-identically.

Layout, under a cache root (``--cache-dir`` / ``$REPRO_CACHE_DIR``)::

    <root>/<key>/meta.json            # schema version, config echo
    <root>/<key>/scenario.pkl.gz      # world minus matrices (pickle)
    <root>/<key>/matrices.npz         # delegate matrices (npz archive)
    <root>/<key>/close_sets-<k>.pkl.gz  # per-ASAPConfig close sets

``<key>`` is a SHA-256 digest over the canonical JSON of the scenario
config (runtime-only fields — worker count, cache directory — excluded)
plus :data:`SCHEMA_VERSION`.  Any change to what a config value means
must bump the schema version, which invalidates every existing entry;
changing any world-determining config field changes the key, so stale
entries are never returned.  Writes go through a temp file + rename so
concurrent runs only ever observe complete artifacts.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.storage.artifacts import load_matrices, save_matrices

PathLike = Union[str, Path]

#: Bump whenever the semantics of cached artifacts change (pickle layout,
#: matrix contents, close-set construction): old entries become unreadable
#: by key mismatch rather than silently wrong.
#: v2: CloseClusterSet gained ``probes_by_as`` (per-AS probe attribution).
SCHEMA_VERSION = 2

#: Environment override for the cache root when no explicit directory is
#: configured.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Config fields that do not determine the world and are excluded from
#: cache keys (they only control how the build is executed).
_RUNTIME_FIELDS = ("workers", "cache_dir")


def resolve_cache_dir(cache_dir: Optional[PathLike] = None) -> Optional[Path]:
    """Resolve the cache root: explicit setting, else ``$REPRO_CACHE_DIR``,
    else ``None`` (caching disabled)."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(env) if env else None


def _canonical_config(config) -> dict:
    payload = dataclasses.asdict(config)
    for name in _RUNTIME_FIELDS:
        payload.pop(name, None)
    return payload


def scenario_cache_key(config) -> str:
    """Stable content hash of a scenario config (+ schema version)."""
    payload = {"schema": SCHEMA_VERSION, "config": _canonical_config(config)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def asap_config_key(asap_config) -> str:
    """Stable content hash of an ASAP protocol config (for close sets)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "config": dataclasses.asdict(asap_config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ScenarioCache:
    """Load/store scenarios (and their close sets) under one cache root."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    def dir_for(self, config) -> Path:
        return self.root / scenario_cache_key(config)

    # -- scenarios ---------------------------------------------------------

    def has(self, config) -> bool:
        entry = self.dir_for(config)
        return (entry / "meta.json").exists() and (
            entry / "scenario.pkl.gz"
        ).exists() and (entry / "matrices.npz").exists()

    def load(self, config):
        """The cached scenario for ``config``, or ``None`` on a cold miss.

        The returned scenario carries the *requested* config object, so
        runtime fields (worker count, cache directory) follow the caller
        rather than whatever run populated the cache.
        """
        if not self.has(config):
            return None
        entry = self.dir_for(config)
        try:
            meta = json.loads((entry / "meta.json").read_text(encoding="utf-8"))
            if meta.get("schema") != SCHEMA_VERSION:
                return None
            with gzip.open(entry / "scenario.pkl.gz", "rb") as handle:
                scenario = pickle.load(handle)
            scenario._matrices = load_matrices(entry / "matrices.npz")
        except (OSError, EOFError, pickle.UnpicklingError, json.JSONDecodeError):
            return None  # partial/corrupt entry: treat as a miss
        scenario.config = config
        return scenario

    def save(self, scenario) -> Path:
        """Persist a built scenario (forces matrix computation first)."""
        if not getattr(scenario, "cacheable", True):
            raise ValueError(
                "refusing to cache a derived scenario (subsampled or "
                "measured view): its contents do not match its config key"
            )
        matrices = scenario.matrices  # materialize before stripping
        entry = self.dir_for(scenario.config)
        entry.mkdir(parents=True, exist_ok=True)
        bare = dataclasses.replace(scenario, _matrices=None)
        _atomic_write_bytes(
            entry / "scenario.pkl.gz",
            gzip.compress(pickle.dumps(bare, protocol=pickle.HIGHEST_PROTOCOL)),
        )
        # The temp name must keep the .npz suffix (numpy appends it otherwise).
        tmp_npz = entry / "matrices.tmp.npz"
        save_matrices(tmp_npz, matrices)
        os.replace(tmp_npz, entry / "matrices.npz")
        meta = {
            "schema": SCHEMA_VERSION,
            "key": scenario_cache_key(scenario.config),
            "config": _canonical_config(scenario.config),
            "clusters": matrices.count,
            "hosts": len(scenario.population),
        }
        _atomic_write_bytes(
            entry / "meta.json",
            json.dumps(meta, indent=2, sort_keys=True, default=str).encode("utf-8"),
        )
        return entry

    # -- close cluster sets ------------------------------------------------

    def _close_set_path(self, config, asap_config) -> Path:
        return self.dir_for(config) / f"close_sets-{asap_config_key(asap_config)}.pkl.gz"

    def load_close_sets(self, config, asap_config) -> Optional[Dict[int, object]]:
        """Cached ``{cluster index: CloseClusterSet}`` mapping, or ``None``."""
        path = self._close_set_path(config, asap_config)
        if not path.exists():
            return None
        try:
            with gzip.open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, EOFError, pickle.UnpicklingError):
            return None

    def save_close_sets(self, config, asap_config, close_sets: Dict[int, object]) -> Path:
        path = self._close_set_path(config, asap_config)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(
            path,
            gzip.compress(pickle.dumps(close_sets, protocol=pickle.HIGHEST_PROTOCOL)),
        )
        return path
