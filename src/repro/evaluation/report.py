"""Fixed-width report rendering for the benchmark harness.

Benchmarks print the same rows/series the paper's figures report, so a
run's stdout is the reproduction record (EXPERIMENTS.md quotes these).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.evaluation.metrics import MethodSummary

CDF_QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)


def render_cdf_row(label: str, samples: Sequence[float], unit: str = "") -> str:
    """One CDF rendered as its values at the standard quantiles."""
    arr = np.asarray(list(samples), dtype=float)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return f"{label:>12} | (no finite samples)"
    cells = "  ".join(
        f"p{int(q * 100):02d}={np.percentile(finite, q * 100):>9.1f}"
        for q in CDF_QUANTILES
    )
    inf_note = "" if finite.size == arr.size else f"  (+{arr.size - finite.size} unreachable)"
    return f"{label:>12} | {cells}{unit and '  ' + unit}{inf_note}"


def render_method_table(summaries: Sequence[MethodSummary]) -> str:
    """The Section 7 comparison table, one row per method."""
    header = (
        f"{'method':>6} | {'sessions':>8} | {'qp_med':>9} {'qp_p90':>9} | "
        f"{'rtt_med':>8} {'rtt_p95':>9} {'<300ms':>7} {'>1s':>6} | "
        f"{'mos_med':>7} {'<2.9':>6} {'>3.6':>6} | {'msg_med':>8} {'msg_p90':>8}"
    )
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.method:>6} | {s.sessions:>8d} | "
            f"{s.quality_paths_median:>9.0f} {s.quality_paths_p90:>9.0f} | "
            f"{s.best_rtt_median_ms:>8.1f} {s.best_rtt_p95_ms:>9.1f} "
            f"{s.frac_best_below_300:>7.2f} {s.frac_rtt_above_1s:>6.2f} | "
            f"{s.mos_median:>7.2f} {s.frac_mos_below_2_9:>6.2f} "
            f"{s.frac_mos_above_3_6:>6.2f} | "
            f"{s.messages_median:>8.0f} {s.messages_p90:>8.0f}"
        )
    return "\n".join(lines)


def render_series(
    title: str, rows: Sequence[Tuple[str, Sequence[float]]], unit: str = ""
) -> str:
    """A titled block of CDF rows (one per method/series)."""
    lines = [title]
    for label, samples in rows:
        lines.append(render_cdf_row(label, samples, unit))
    return "\n".join(lines)


def render_kv_table(title: str, pairs: Sequence[Tuple[str, object]]) -> str:
    """A titled key/value block for scalar findings."""
    width = max((len(k) for k, _ in pairs), default=1)
    lines = [title]
    for key, value in pairs:
        if isinstance(value, float):
            lines.append(f"  {key:<{width}} : {value:.4f}")
        else:
            lines.append(f"  {key:<{width}} : {value}")
    return "\n".join(lines)
