"""The unified experiment engine: one API from tiny to a million hosts.

:class:`Experiment` runs the complete Section-7 pipeline —

    build world → sweep/spill columns → generate workload →
    evaluate policies → reduce aggregates —

behind one config, with two interchangeable substrates:

- **dense** (small tiers): the scenario materializes its N×N delegate
  matrices exactly as before, artifact-cache aware;
- **streamed** (large tiers): the scenario gets a
  :class:`~repro.worldarrays.virtual.VirtualMatrices` view instead —
  columns are assembled on demand by the flat fill (grouped by
  destination AS, the unit the one-way memo amortizes) and spilled to a
  chunked :class:`~repro.storage.columns.ColumnStore`, so the dense
  arrays never exist.  Every consumer reads through the same
  cell/gather/block protocol, which is why the two substrates produce
  bit-identical experiment results.

Each run times its stages, snapshots peak RSS, and can emit a
benchmark document (``benchmarks/BENCH_e2e.json``) whose schema is
validated by :func:`validate_e2e_document`.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.baselines.base import BaselineConfig
from repro.core.config import ASAPConfig, derive_k_hops
from repro.errors import ConfigurationError
from repro.evaluation.policies import METHOD_NAMES, default_policies
from repro.evaluation.section7 import Section7Result, run_section7
from repro.evaluation.sessions import generate_workload
from repro.scenario import (
    SCALES,
    Scenario,
    ScenarioConfig,
    build_scenario,
    build_scenario_from_topology,
)
from repro.storage.cache import scenario_cache_key
from repro.storage.columns import ColumnStore
from repro.topology.generator import generate_topology
from repro.worldarrays.virtual import VirtualMatrices

__all__ = [
    "E2E_BENCH_SCHEMA_VERSION",
    "Experiment",
    "ExperimentConfig",
    "ExperimentReport",
    "STREAM_SCALES",
    "run_experiment",
    "validate_e2e_document",
]

#: Tiers whose dense matrices exceed sensible memory — streamed by default.
STREAM_SCALES = ("100k", "1m")

#: Bump when the BENCH_e2e.json document layout changes.
E2E_BENCH_SCHEMA_VERSION = 1

#: MOS grid of the reduced CDF (paper Figs. 15-16 read MOS ∈ [1, 4.5]).
MOS_GRID = tuple(round(1.0 + 0.1 * i, 1) for i in range(36))


@dataclass(frozen=True, kw_only=True)
class ExperimentConfig:
    """Everything one experiment run needs, in one place.

    ``stream=None`` picks the substrate by tier (:data:`STREAM_SCALES`);
    forcing ``True``/``False`` overrides it (the parity suite runs both
    on the same tier).  ``spill_dir=None`` spills to an ephemeral
    temporary directory that is removed after the run; a concrete path
    makes the column store persistent and the run resumable — a rerun
    reuses every chunk already on disk.
    """

    scale: str = "small"
    seed: int = 0
    session_count: int = 2000
    latent_target: int = 60
    max_latent_sessions: Optional[int] = None
    methods: Sequence[str] = METHOD_NAMES
    stream: Optional[bool] = None
    spill_dir: Optional[Union[str, Path]] = None
    chunk_columns: int = 256
    asap_config: Optional[ASAPConfig] = None
    baseline_config: Optional[BaselineConfig] = None

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ConfigurationError(
                f"unknown scale {self.scale!r}; choose from {SCALES}"
            )
        if self.session_count < 1:
            raise ConfigurationError("session_count must be >= 1")
        if self.chunk_columns < 1:
            raise ConfigurationError("chunk_columns must be >= 1")
        unknown = set(self.methods) - set(METHOD_NAMES)
        if unknown:
            raise ConfigurationError(
                f"unknown methods {sorted(unknown)}; choose from {METHOD_NAMES}"
            )

    @property
    def streamed(self) -> bool:
        if self.stream is not None:
            return self.stream
        return self.scale in STREAM_SCALES


@dataclass
class ExperimentReport:
    """One finished run: results plus the run's own accounting."""

    config: ExperimentConfig
    result: Section7Result
    population: int
    clusters: int
    stage_seconds: Dict[str, float]
    policy_seconds: Dict[str, float]
    peak_rss_kb: int
    derived_k_hops: int
    spill: Optional[dict] = None

    @property
    def streamed(self) -> bool:
        return self.config.streamed

    @property
    def dense_bytes(self) -> int:
        """Footprint of the three dense N×N arrays this run would have
        needed without streaming (rtt + loss float64, hops int64)."""
        return 3 * self.clusters * self.clusters * 8

    def bench_document(self) -> dict:
        """The run as a BENCH_e2e.json document (validated on write)."""
        methods = {}
        for summary in self.result.summaries():
            row = {k: _jsonable(v) for k, v in asdict(summary).items() if k != "method"}
            methods[summary.method] = row
        mos_cdf: Dict[str, list] = {"grid": list(MOS_GRID)}
        for name in self.result.records:
            mos = self.result.series(name, "highest_mos")
            mos_cdf[name] = [float(np.mean(mos <= level)) for level in MOS_GRID]
        return {
            "schema": E2E_BENCH_SCHEMA_VERSION,
            "generated_by": "repro.evaluation.engine",
            "scale": self.config.scale,
            "seed": self.config.seed,
            "streamed": self.streamed,
            "population": self.population,
            "clusters": self.clusters,
            "chunk_columns": self.config.chunk_columns if self.streamed else None,
            "dense_bytes": self.dense_bytes,
            "peak_rss_kb": self.peak_rss_kb,
            "sessions": self.config.session_count,
            "latent_sessions": len(self.result.latent_sessions),
            "derived_k_hops": self.derived_k_hops,
            "stage_seconds": {k: round(v, 6) for k, v in self.stage_seconds.items()},
            "policy_seconds": {k: round(v, 6) for k, v in self.policy_seconds.items()},
            "spill": self.spill,
            "methods": methods,
            "mos_cdf": mos_cdf,
        }

    def write_bench(self, path: Union[str, Path]) -> Path:
        document = self.bench_document()
        problems = validate_e2e_document(document)
        if problems:
            raise ValueError("invalid e2e bench document: " + "; ".join(problems))
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path


class _TimedPolicy:
    """Wraps a policy to account its evaluation wall-clock per name."""

    def __init__(self, inner, sink: Dict[str, float]) -> None:
        self._inner = inner
        self._sink = sink
        self.name = inner.name

    def evaluate_sessions(self, world, sessions, *, session_ids=None, columns=None):
        started = time.perf_counter()
        out = self._inner.evaluate_sessions(
            world, sessions, session_ids=session_ids, columns=columns
        )
        self._sink[self.name] = (
            self._sink.get(self.name, 0.0) + time.perf_counter() - started
        )
        return out


class Experiment:
    """One configured experiment, runnable end to end."""

    def __init__(self, config: Optional[ExperimentConfig] = None, **overrides) -> None:
        if config is None:
            config = ExperimentConfig(**overrides)
        elif overrides:
            raise ConfigurationError("pass either a config or keyword overrides")
        self.config = config

    def run(self) -> ExperimentReport:
        config = self.config
        stage_seconds: Dict[str, float] = {}
        policy_seconds: Dict[str, float] = {}
        ephemeral_spill: Optional[Path] = None
        timeline = obs.timeline()
        run_t0 = time.perf_counter()

        def mark_stage(stage: str, seconds: float, rows: Optional[int] = None) -> None:
            # Machine-timing samples: stamped on the wall clock and
            # flagged ``wall`` so the byte-stability contract skips them.
            if not timeline:
                return
            at_ms = (time.perf_counter() - run_t0) * 1000.0
            timeline.sample(
                "engine.stage_seconds", at_ms, seconds, wall=True, stage=stage
            )
            if rows is not None and seconds > 0:
                timeline.sample(
                    "engine.rows_per_s", at_ms, rows / seconds, wall=True, stage=stage
                )

        try:
            with obs.span(
                "experiment.run", scale=config.scale, streamed=config.streamed
            ):
                started = time.perf_counter()
                if config.streamed:
                    scenario, spill_root = self._build_streamed()
                    if config.spill_dir is None:
                        ephemeral_spill = spill_root
                else:
                    scenario = build_scenario(
                        ScenarioConfig.preset(config.scale, config.seed)
                    )
                    _ = scenario.matrices  # materialize inside the build stage
                stage_seconds["build"] = time.perf_counter() - started
                mark_stage("build", stage_seconds["build"])

                view = scenario.matrix_view()
                started = time.perf_counter()
                if config.streamed:
                    view.ensure_spilled()
                stage_seconds["sweep"] = time.perf_counter() - started
                mark_stage("sweep", stage_seconds["sweep"], rows=view.count)

                started = time.perf_counter()
                workload = generate_workload(
                    scenario,
                    config.session_count,
                    seed=config.seed,
                    latent_target=config.latent_target,
                )
                stage_seconds["workload"] = time.perf_counter() - started
                mark_stage(
                    "workload", stage_seconds["workload"], rows=len(workload.sessions)
                )

                started = time.perf_counter()
                asap_config = config.asap_config
                if asap_config is None:
                    asap_config = ASAPConfig(k_hops=derive_k_hops(view))
                policies = [
                    _TimedPolicy(policy, policy_seconds)
                    for policy in default_policies(
                        scenario,
                        methods=config.methods,
                        asap_config=asap_config,
                        baseline_config=config.baseline_config,
                    )
                ]
                result = run_section7(
                    scenario,
                    seed=config.seed,
                    asap_config=asap_config,
                    baseline_config=config.baseline_config,
                    workload=workload,
                    max_latent_sessions=config.max_latent_sessions,
                    policies=policies,
                )
                stage_seconds["evaluate"] = time.perf_counter() - started
                mark_stage(
                    "evaluate",
                    stage_seconds["evaluate"],
                    rows=config.session_count * len(policies),
                )

                started = time.perf_counter()
                for summary in result.summaries():
                    obs.gauge(f"experiment.mos_median.{summary.method}").set(
                        summary.mos_median
                    )
                stage_seconds["reduce"] = time.perf_counter() - started
                mark_stage("reduce", stage_seconds["reduce"])

                spill = self._spill_accounting(view, ephemeral_spill)
                peak_rss = _peak_rss_kb()
                if timeline:
                    end_ms = (time.perf_counter() - run_t0) * 1000.0
                    timeline.sample(
                        "engine.peak_rss_kb", end_ms, peak_rss, wall=True
                    )
                    if spill is not None:
                        timeline.sample(
                            "engine.spill_bytes", end_ms, spill["bytes"], wall=True
                        )
                    hits = obs.counter("columns.chunks.hit").value
                    misses = obs.counter("columns.chunks.miss").value
                    if hits + misses:
                        timeline.sample(
                            "engine.column_hit_rate",
                            end_ms,
                            hits / (hits + misses),
                            wall=True,
                        )
                obs.annotate(
                    peak_rss_kb=peak_rss,
                    stage_seconds={k: round(v, 6) for k, v in stage_seconds.items()},
                )
                return ExperimentReport(
                    config=config,
                    result=result,
                    population=len(scenario.population),
                    clusters=view.count,
                    stage_seconds=stage_seconds,
                    policy_seconds=policy_seconds,
                    peak_rss_kb=peak_rss,
                    derived_k_hops=asap_config.k_hops,
                    spill=spill,
                )
        finally:
            if ephemeral_spill is not None:
                shutil.rmtree(ephemeral_spill, ignore_errors=True)

    # -- internals ---------------------------------------------------------

    def _build_streamed(self) -> Tuple[Scenario, Path]:
        """Build the world with a streamed matrix view attached.

        Bypasses the scenario artifact cache on purpose: persisting a
        scenario forces dense matrix materialization, the very thing the
        streamed substrate exists to avoid.  The column store is the
        streamed run's cache instead (content-addressed by the same
        scenario config key).
        """
        config = self.config
        scenario_config = ScenarioConfig.preset(config.scale, config.seed)
        with obs.span("experiment.build", scale=config.scale):
            topology = generate_topology(scenario_config.topology)
            scenario = build_scenario_from_topology(topology, scenario_config)
        if config.spill_dir is not None:
            spill_root = Path(config.spill_dir)
        else:
            spill_root = Path(tempfile.mkdtemp(prefix="repro-columns-"))
        n = len(scenario.clusters.all_clusters())
        store = ColumnStore(
            spill_root,
            key=scenario_cache_key(scenario_config),
            n=n,
            chunk=config.chunk_columns,
        )
        virtual = VirtualMatrices(
            scenario.latency,
            scenario.clusters.all_clusters(),
            chunk_columns=config.chunk_columns,
            store=store,
        )
        scenario.attach_virtual_matrices(virtual)
        return scenario, spill_root

    def _spill_accounting(
        self, view, ephemeral_spill: Optional[Path]
    ) -> Optional[dict]:
        if not self.config.streamed:
            return None
        store = view.store
        if store is None:
            return None
        stored, total = store.chunk_count()
        spilled_bytes = sum(
            f.stat().st_size for f in store.root.glob("*.npy") if f.is_file()
        )
        return {
            "dir": None if ephemeral_spill is not None else str(store.root),
            "ephemeral": ephemeral_spill is not None,
            "chunks": stored,
            "chunk_total": total,
            "bytes": spilled_bytes,
        }


def run_experiment(
    config: Optional[ExperimentConfig] = None, **overrides
) -> ExperimentReport:
    """Build and run an :class:`Experiment` in one call."""
    return Experiment(config, **overrides).run()


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # non-POSIX: no resource module
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _jsonable(value):
    """JSON-safe scalar: non-finite floats become None."""
    if isinstance(value, float) and not np.isfinite(value):
        return None
    return value


# -- BENCH_e2e.json schema -------------------------------------------------

_REQUIRED_STAGES = ("build", "sweep", "workload", "evaluate", "reduce")


def validate_e2e_document(document: dict) -> List[str]:
    """Check a BENCH_e2e.json document; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be an object, got {type(document).__name__}"]

    def need(mapping, key, kinds, where=""):
        label = f"{where}{key}"
        if key not in mapping:
            problems.append(f"missing field {label!r}")
            return None
        value = mapping[key]
        if not isinstance(value, kinds) or isinstance(value, bool) and bool not in (
            kinds if isinstance(kinds, tuple) else (kinds,)
        ):
            expected = "/".join(
                t.__name__ for t in (kinds if isinstance(kinds, tuple) else (kinds,))
            )
            problems.append(f"field {label!r} must be {expected}")
            return None
        return value

    if document.get("schema") != E2E_BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema must be {E2E_BENCH_SCHEMA_VERSION}, got {document.get('schema')!r}"
        )
    need(document, "generated_by", str)
    need(document, "scale", str)
    need(document, "seed", int)
    need(document, "streamed", bool)
    need(document, "population", int)
    need(document, "clusters", int)
    need(document, "dense_bytes", int)
    need(document, "peak_rss_kb", int)
    need(document, "sessions", int)
    need(document, "latent_sessions", int)
    need(document, "derived_k_hops", int)
    stages = need(document, "stage_seconds", dict)
    if stages is not None:
        for stage in _REQUIRED_STAGES:
            if not isinstance(stages.get(stage), (int, float)):
                problems.append(f"stage_seconds.{stage} must be a number")
    policies = need(document, "policy_seconds", dict)
    if policies is not None:
        for key, value in policies.items():
            if not isinstance(value, (int, float)):
                problems.append(f"policy_seconds.{key} must be a number")
    if document.get("streamed"):
        spill = need(document, "spill", dict)
        if spill is not None:
            for key, kinds in (
                ("ephemeral", bool),
                ("chunks", int),
                ("chunk_total", int),
                ("bytes", int),
            ):
                if not isinstance(spill.get(key), kinds):
                    problems.append(f"spill.{key} must be {kinds.__name__}")
    methods = need(document, "methods", dict)
    if methods is not None:
        if not methods:
            problems.append("methods must not be empty")
        for name, row in methods.items():
            if not isinstance(row, dict):
                problems.append(f"methods.{name} must be an object")
                continue
            if not isinstance(row.get("sessions"), int):
                problems.append(f"methods.{name}.sessions must be an integer")
            if "mos_median" not in row:
                problems.append(f"methods.{name} missing field 'mos_median'")
    mos_cdf = need(document, "mos_cdf", dict)
    if mos_cdf is not None:
        grid = mos_cdf.get("grid")
        if not isinstance(grid, list) or not grid:
            problems.append("mos_cdf.grid must be a non-empty list")
        else:
            for name, series in mos_cdf.items():
                if name == "grid":
                    continue
                if not isinstance(series, list) or len(series) != len(grid):
                    problems.append(f"mos_cdf.{name} must match the grid length")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate a BENCH_e2e.json document from the command line."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.engine",
        description="Validate an end-to-end experiment benchmark document.",
    )
    parser.add_argument("path", help="path to BENCH_e2e.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the document is invalid (default: report only)",
    )
    args = parser.parse_args(argv)
    document = json.loads(Path(args.path).read_text(encoding="utf-8"))
    problems = validate_e2e_document(document)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1 if args.check else 0
    print(f"{args.path}: valid e2e bench document (schema {document['schema']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
