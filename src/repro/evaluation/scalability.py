"""Fig. 17: the scalability experiment.

"For a given relay node selection method, under different host
populations, if the number of quality paths it found divided by the
population remains relatively stable, we say this method is scalable."

The paper evaluates with 103,625 online hosts vs 23,366 (ratio 4.434).
Here the large population is the scenario's own; the small one is a
random subsample at ``1 / ratio``.  A method's *scalability error* is
how far the population-normalized quality-path distributions of the two
runs diverge (relative difference of medians) — near 0 for a scalable
method (ASAP), large for fixed-probe methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineConfig
from repro.core.config import ASAPConfig
from repro.evaluation.section7 import Section7Result, run_section7
from repro.scenario import Scenario, subsample_scenario

#: The paper's population ratio: 103,625 / 23,366.
PAPER_POPULATION_RATIO = 4.434


@dataclass
class ScalabilityResult:
    """Quality-path distributions at two population scales."""

    large_population: int
    small_population: int
    large: Section7Result
    small: Section7Result

    @property
    def ratio(self) -> float:
        return self.large_population / self.small_population

    def normalized_large_series(self, method: str) -> np.ndarray:
        """Large-population one-hop quality paths divided by the ratio
        (Fig. 17's y-axis transformation).

        One-hop counts only: two-hop candidates are IP *pairs*, which
        scale quadratically with the population by construction and
        would make per-capita normalization meaningless.
        """
        return self.large.series(method, "one_hop_quality_paths") / self.ratio

    def _paired_counts(self, method: str):
        """(large, small) one-hop counts for sessions present at both
        scales, matched by session id."""
        large_by_id = {
            s.session_id: r.one_hop_count
            for s, r in zip(self.large.latent_sessions, self.large.records[method])
        }
        pairs = []
        for session, record in zip(
            self.small.latent_sessions, self.small.records[method]
        ):
            if session.session_id in large_by_id:
                pairs.append((large_by_id[session.session_id], record.one_hop_count))
        return pairs

    def scaling_factor(self, method: str) -> float:
        """Median per-session growth of quality paths, large vs small.

        A scalable method's candidate sets grow with the population
        (factor ≈ population ratio); fixed-probe methods sit near 1.
        Computed pairwise over sessions evaluated at both scales.
        """
        pairs = self._paired_counts(method)
        if not pairs:
            return 1.0
        ratios = [(big + 1.0) / (small + 1.0) for big, small in pairs]
        return float(np.median(ratios))

    def scalability_error(self, method: str) -> float:
        """|scaling factor − population ratio| / population ratio.

        ≈ 0 when per-capita one-hop quality paths are stable across
        populations (scalable); ≈ |1 − ratio|/ratio ≈ 0.77 at the
        paper's 4.434 ratio for fixed-probe methods.
        """
        return abs(self.scaling_factor(method) - self.ratio) / self.ratio


def run_scalability(
    scenario: Scenario,
    ratio: float = PAPER_POPULATION_RATIO,
    session_count: int = 2000,
    latent_target: int = 60,
    seed: int = 0,
    methods: Sequence[str] = ("DEDI", "RAND", "MIX", "ASAP"),
    asap_config: Optional[ASAPConfig] = None,
    baseline_config: Optional[BaselineConfig] = None,
    max_latent_sessions: int = 60,
) -> ScalabilityResult:
    """Run the Fig. 17 experiment at two population scales.

    The latent sessions are generated once on the large population and
    *re-targeted* onto the small one (same caller/callee clusters, a
    host drawn from each cluster's surviving members), so the two runs
    measure the identical calling pattern — only the relay population
    changes, which is exactly the variable Fig. 17 isolates.
    """
    from repro import obs
    from repro.evaluation.sessions import Session, SessionWorkload, generate_workload

    small_scenario = subsample_scenario(scenario, 1.0 / ratio, seed=seed)
    large_workload = generate_workload(
        scenario, session_count, seed=seed, latent_target=latent_target
    )
    with obs.span("scalability.large", population=len(scenario.population)):
        large = run_section7(
            scenario,
            seed=seed,
            methods=methods,
            asap_config=asap_config,
            baseline_config=baseline_config,
            workload=large_workload,
            max_latent_sessions=max_latent_sessions,
        )

    # Re-target the large run's latent sessions onto the small population.
    large_view = scenario.matrix_view()
    small_view = small_scenario.matrix_view()
    small_sessions = []
    for session in large.latent_sessions:
        prefix_a = large_view.prefixes[session.caller_cluster]
        prefix_b = large_view.prefixes[session.callee_cluster]
        if prefix_a not in small_view.index_of or prefix_b not in small_view.index_of:
            continue
        ca = small_view.index_of[prefix_a]
        cb = small_view.index_of[prefix_b]
        host_a = small_scenario.clusters.clusters[prefix_a].hosts[0]
        host_b = small_scenario.clusters.clusters[prefix_b].hosts[0]
        small_sessions.append(
            Session(
                session_id=session.session_id,
                caller=host_a.ip,
                callee=host_b.ip,
                caller_cluster=ca,
                callee_cluster=cb,
                direct_rtt_ms=small_view.rtt_cell(ca, cb),
            )
        )
    small_workload = SessionWorkload(sessions=small_sessions)
    with obs.span("scalability.small", population=len(small_scenario.population)):
        small = run_section7(
            small_scenario,
            seed=seed,
            methods=methods,
            asap_config=asap_config,
            baseline_config=baseline_config,
            workload=small_workload,
            max_latent_sessions=max_latent_sessions,
        )
    return ScalabilityResult(
        large_population=len(scenario.population),
        small_population=len(small_scenario.population),
        large=large,
        small=small,
    )
