"""Ablation sweeps over ASAP's design choices (DESIGN.md Section 5).

Each sweep runs Section 7's latent-session evaluation for ASAP only,
varying one knob:

- ``k`` (close-cluster BFS hop limit) — recall vs maintenance cost;
- ``sizeT`` (two-hop trigger) — how often two-hop search fires;
- ``latT`` (quality threshold) — sensitivity of quality-path counts;
- the valley-free constraint itself — what AS-awareness actually buys.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import ASAPConfig
from repro.core.protocol import ASAPSystem
from repro.evaluation.metrics import MethodRecord, record_from_asap
from repro.evaluation.sessions import Session, SessionWorkload, generate_workload
from repro.scenario import Scenario


@dataclass
class AblationPoint:
    """One configuration's aggregate outcome."""

    label: str
    config: ASAPConfig
    quality_paths_median: float
    best_rtt_median_ms: float
    rescued_fraction: float       # latent sessions with a <300 ms relay
    messages_median: float
    maintenance_messages: int     # close-set probe traffic (whole system)
    two_hop_sessions: int         # sessions that needed two-hop search

    def row(self) -> str:
        return (
            f"{self.label:>18}  qp_med={self.quality_paths_median:>8.0f}  "
            f"rtt_med={self.best_rtt_median_ms:>6.1f}  rescued={self.rescued_fraction:>5.2f}  "
            f"msg_med={self.messages_median:>6.0f}  maint={self.maintenance_messages:>8d}  "
            f"two_hop={self.two_hop_sessions:>4d}"
        )


def _evaluate(
    scenario: Scenario,
    latent: List[Session],
    config: ASAPConfig,
    label: str,
) -> AblationPoint:
    system = ASAPSystem(scenario, config)
    records: List[MethodRecord] = []
    two_hop_sessions = 0
    for session in latent:
        call = system.call(session.caller, session.callee)
        records.append(record_from_asap(call, session.session_id))
        if call.selection is not None and call.selection.two_hop_queries > 0:
            two_hop_sessions += 1
    qp = np.array([r.quality_paths for r in records], dtype=float)
    rtts = np.array(
        [r.best_rtt_ms if r.best_rtt_ms is not None else np.inf for r in records]
    )
    msgs = np.array([r.messages for r in records], dtype=float)
    finite = rtts[np.isfinite(rtts)]
    return AblationPoint(
        label=label,
        config=config,
        quality_paths_median=float(np.median(qp)) if qp.size else 0.0,
        best_rtt_median_ms=float(np.median(finite)) if finite.size else float("inf"),
        rescued_fraction=float(np.mean(rtts < config.lat_threshold_ms)) if rtts.size else 0.0,
        messages_median=float(np.median(msgs)) if msgs.size else 0.0,
        maintenance_messages=system.maintenance_messages(),
        two_hop_sessions=two_hop_sessions,
    )


def _latent_sessions(
    scenario: Scenario,
    session_count: int,
    latent_target: int,
    seed: int,
    max_latent: Optional[int],
) -> List[Session]:
    workload = generate_workload(
        scenario, session_count, seed=seed, latent_target=latent_target
    )
    latent = workload.latent()
    return latent[:max_latent] if max_latent is not None else latent


def sweep_k(
    scenario: Scenario,
    k_values: Sequence[int] = (2, 3, 4, 5, 6),
    session_count: int = 1500,
    latent_target: int = 40,
    seed: int = 0,
    max_latent: Optional[int] = 40,
    base: Optional[ASAPConfig] = None,
) -> List[AblationPoint]:
    """BFS hop-limit sweep (paper fixes k = 4)."""
    if base is None:
        base = ASAPConfig()
    latent = _latent_sessions(scenario, session_count, latent_target, seed, max_latent)
    return [
        _evaluate(scenario, latent, replace(base, k_hops=k), f"k={k}")
        for k in k_values
    ]


def sweep_size_threshold(
    scenario: Scenario,
    size_values: Sequence[int] = (0, 50, 300, 1000, 10**9),
    session_count: int = 1500,
    latent_target: int = 40,
    seed: int = 0,
    max_latent: Optional[int] = 40,
    base: Optional[ASAPConfig] = None,
) -> List[AblationPoint]:
    """Two-hop trigger sweep (paper uses sizeT = 300)."""
    if base is None:
        base = ASAPConfig()
    latent = _latent_sessions(scenario, session_count, latent_target, seed, max_latent)
    return [
        _evaluate(
            scenario, latent, replace(base, size_threshold=size), f"sizeT={size}"
        )
        for size in size_values
    ]


def sweep_lat_threshold(
    scenario: Scenario,
    thresholds_ms: Sequence[float] = (200.0, 250.0, 300.0, 400.0),
    session_count: int = 1500,
    latent_target: int = 40,
    seed: int = 0,
    max_latent: Optional[int] = 40,
    base: Optional[ASAPConfig] = None,
) -> List[AblationPoint]:
    """Quality-threshold sweep (paper sets latT close to 300 ms).

    The latent session set is held fixed (at 300 ms) so points are
    comparable; only the protocol's own threshold moves.
    """
    if base is None:
        base = ASAPConfig()
    latent = _latent_sessions(scenario, session_count, latent_target, seed, max_latent)
    return [
        _evaluate(
            scenario,
            latent,
            replace(base, lat_threshold_ms=threshold),
            f"latT={threshold:.0f}",
        )
        for threshold in thresholds_ms
    ]


def sweep_valley_free(
    scenario: Scenario,
    session_count: int = 1500,
    latent_target: int = 40,
    seed: int = 0,
    max_latent: Optional[int] = 40,
    base: Optional[ASAPConfig] = None,
) -> List[AblationPoint]:
    """Valley-free constraint on/off — what the AS-awareness is worth.

    With the constraint off, the BFS floods every direction and the
    close sets balloon (more maintenance probes for the same quality) —
    the same failure mode as AS-oblivious probing, quantified.
    """
    if base is None:
        base = ASAPConfig()
    latent = _latent_sessions(scenario, session_count, latent_target, seed, max_latent)
    return [
        _evaluate(scenario, latent, replace(base, valley_free=True), "valley-free"),
        _evaluate(scenario, latent, replace(base, valley_free=False), "unconstrained"),
    ]
