"""Long-horizon churn soak over the live control plane.

The chaos harness (:mod:`repro.evaluation.chaos`) answers "does one
fault window hurt quality?"; the soak answers the systems question the
paper's static snapshot never could: **does the control plane stay
healthy over hours of continuous churn?**  One soak run drives the
full stack — sharded directory, incremental close-set maintainer,
fault-injected runtime — through simulated hours and gates on
steady-state invariants:

- **registry bounded** — with equal join/leave rates the soft-state
  directory's peak size stays bounded and its final size equals the
  alive population (leases expire, re-registration is idempotent);
- **directory converged** — after a shard is killed and recovered,
  every alive host resolves again (failover joins moved leases to the
  ring successor; refresh passes move them home; TTL sweeps clear the
  stragglers);
- **staleness bounded** — the p95 drift of maintained close sets
  between maintenance ticks (measured against the post-repair truth)
  stays under a threshold;
- **calls terminal** — every join/call/media record reaches a terminal
  outcome; a hung record raises, exactly as in chaos.

Determinism: the workload stream is the *same seeded stream* chaos
uses (:func:`~repro.evaluation.chaos.schedule_workload`), fault
schedules compile to byte-identical timelines, and every control-plane
mutation logs a canonical JSON line — two soaks with one seed produce
byte-identical reports and logs, and a zero-fault soak reproduces the
static chaos run's records exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.control import CloseSetMaintainer, HashRing, MembershipEvent, ShardedDirectory
from repro.core.config import ASAPConfig
from repro.core.runtime import ASAPRuntime, RuntimePolicy
from repro.errors import ConfigurationError
from repro.evaluation.chaos import (
    _dist,
    collect_chaos_result,
    schedule_telemetry_ticks,
    schedule_workload,
)
from repro.faults import (
    ChurnWave,
    FaultInjector,
    FaultScheduleConfig,
    ShardOutage,
    compile_schedule,
)
from repro.netaddr import IPv4Address
from repro.scenario import Scenario

__all__ = ["SoakConfig", "SoakReport", "default_shard_outage", "run_soak"]


@dataclass(frozen=True, kw_only=True)
class SoakConfig:
    """One churn soak, fully described (seed ⇒ byte-identical report)."""

    seed: int = 0
    #: Simulated runtime; an hour is the acceptance floor, CI smoke uses less.
    sim_minutes: float = 60.0
    #: Directory shards on the consistent-hash ring.
    shards: int = 3
    virtual_nodes: int = 16

    # Workload (same knobs as chaos, same seeded stream).
    sessions: int = 40
    joins: int = 40
    media_duration_ms: float = 10_000.0
    latent_target: Optional[int] = None

    # Churn: sustained departures plus optional mass waves; every
    # departed host rejoins ``rejoin_delay_ms`` later, so join and
    # leave rates are equal by construction (the steady-state regime).
    churn_rate_per_min: float = 0.0
    churn_waves: Tuple[ChurnWave, ...] = ()
    rejoin_delay_ms: float = 30_000.0

    # Directory soft state: hosts refresh leases every maintenance
    # tick; the TTL is double the tick so one missed refresh survives.
    maintenance_interval_ms: float = 300_000.0
    registry_ttl_ms: float = 600_000.0

    # Shard failure windows (default: none; the CLI injects one).
    shard_outages: Tuple[ShardOutage, ...] = ()

    # Close-set maintenance: how many surrogates the maintainer tracks
    # and the p95 inter-tick drift the staleness gate tolerates.
    tracked_surrogates: int = 4
    staleness_p95_max: float = 0.5

    def __post_init__(self) -> None:
        if self.sim_minutes <= 0:
            raise ConfigurationError("sim_minutes must be positive")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.rejoin_delay_ms < 0:
            raise ConfigurationError("rejoin_delay_ms must be >= 0")
        if self.maintenance_interval_ms <= 0:
            raise ConfigurationError("maintenance_interval_ms must be positive")
        if self.registry_ttl_ms <= self.maintenance_interval_ms:
            raise ConfigurationError(
                "registry_ttl_ms must exceed maintenance_interval_ms "
                "(a lease must survive one refresh interval)"
            )
        for outage in self.shard_outages:
            if outage.shard >= self.shards:
                raise ConfigurationError(
                    f"shard outage targets shard {outage.shard}, "
                    f"only {self.shards} shards"
                )
            if outage.start_ms + outage.duration_ms >= self.duration_ms:
                raise ConfigurationError(
                    "shard outage must end before the run does "
                    "(the convergence gate needs recovery time)"
                )

    @property
    def duration_ms(self) -> float:
        return self.sim_minutes * 60_000.0

    def fault_config(self) -> FaultScheduleConfig:
        """The compiled-schedule description of this soak's faults."""
        return FaultScheduleConfig(
            seed=self.seed,
            duration_ms=self.duration_ms,
            host_churn_rate_per_min=self.churn_rate_per_min,
            churn_waves=self.churn_waves,
            shard_outages=self.shard_outages,
        )


def default_shard_outage(config: SoakConfig, shard: int = 0) -> ShardOutage:
    """The canonical mid-run shard kill: down at 30%, back at 50% —
    leaving half the run for the convergence gate to be earned in."""
    return ShardOutage(
        shard=shard,
        start_ms=round(config.duration_ms * 0.3, 3),
        duration_ms=round(config.duration_ms * 0.2, 3),
    )


@dataclass
class SoakReport:
    """Everything one soak produced, plus its gate verdicts."""

    seed: int
    sim_minutes: float
    shards: int
    hosts: int
    alive_end: int
    fault_events: int
    workload: dict = field(default_factory=dict)
    directory: dict = field(default_factory=dict)
    maintainer: dict = field(default_factory=dict)
    staleness: dict = field(default_factory=dict)
    registry_bounded: bool = True
    directory_converged: bool = True
    staleness_bounded: bool = True
    calls_terminal: bool = True
    fault_log: List[str] = field(default_factory=list)
    directory_log: List[str] = field(default_factory=list)
    repair_log: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.registry_bounded
            and self.directory_converged
            and self.staleness_bounded
            and self.calls_terminal
        )

    def log_lines(self) -> List[str]:
        """The full control-plane event log, byte-stable across runs."""
        return self.fault_log + self.directory_log + self.repair_log

    def manifest_block(self) -> dict:
        """The ``soak`` sub-document of the run manifest (schema v4)."""
        return {
            "ok": self.ok,
            "seed": self.seed,
            "sim_minutes": self.sim_minutes,
            "shards": self.shards,
            "registry_bounded": self.registry_bounded,
            "directory_converged": self.directory_converged,
            "staleness_bounded": self.staleness_bounded,
            "calls_terminal": self.calls_terminal,
            "hosts": self.hosts,
            "alive_end": self.alive_end,
            "fault_events": self.fault_events,
            "directory": self.directory,
            "maintainer": self.maintainer,
            "staleness": self.staleness,
        }

    def to_dict(self) -> dict:
        doc = self.manifest_block()
        doc["workload"] = self.workload
        doc["log"] = self.log_lines()
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def summary_rows(self) -> List[Tuple[str, str]]:
        def gate(ok: bool) -> str:
            return "pass" if ok else "FAIL"

        return [
            ("verdict", gate(self.ok)),
            ("simulated", f"{self.sim_minutes:g} min, {self.shards} shards"),
            ("hosts", f"{self.hosts} ({self.alive_end} alive at end)"),
            ("fault events", str(self.fault_events)),
            ("registry bounded", f"{gate(self.registry_bounded)} "
             f"(peak={self.directory.get('peak_total')}, end={self.directory.get('end_total')})"),
            ("directory converged", f"{gate(self.directory_converged)} "
             f"(failover_joins={self.directory.get('failover_joins')}, "
             f"misses={self.directory.get('resolve_misses')})"),
            ("close-set staleness", f"{gate(self.staleness_bounded)} "
             f"(p95={self.staleness.get('p95', 0.0)}, "
             f"repairs={self.maintainer.get('local_repairs', 0)}, "
             f"rebuilds={self.maintainer.get('rebuilds', 0)})"),
            ("calls terminal", gate(self.calls_terminal)),
        ]


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    return round(float(np.percentile(np.asarray(sorted(values), dtype=float), q)), 4)


def run_soak(
    scenario: Scenario,
    config: SoakConfig,
    *,
    asap_config: Optional[ASAPConfig] = None,
    policy: Optional[RuntimePolicy] = None,
) -> SoakReport:
    """Run one churn soak; returns the gated :class:`SoakReport`.

    Raises :class:`~repro.errors.EvaluationError` if any runtime record
    hangs (the no-hang invariant); all other gate failures are recorded
    in the report (``report.ok``), not raised — CI decides the exit.
    """
    duration = config.duration_ms
    fault_config = config.fault_config()
    runtime = ASAPRuntime(scenario, asap_config, policy)
    schedule = compile_schedule(fault_config, scenario)

    ring = HashRing(config.shards, config.virtual_nodes)
    directory = ShardedDirectory(
        ring, runtime.system.cluster_of_ip, ttl_ms=config.registry_ttl_ms
    )
    injector = FaultInjector(runtime, schedule, directory=directory)
    injector.install()
    maintainer = CloseSetMaintainer.from_system(runtime.system)

    hosts = scenario.population.hosts
    alive = {host.ip for host in hosts}
    system = runtime.system
    sim = runtime.sim
    staleness_samples: List[float] = []
    tracking_started = False

    def ensure_tracking() -> None:
        # Lazy: a zero-fault soak never builds maintainer sets, so its
        # observability stream matches the static chaos run exactly.
        nonlocal tracking_started
        if tracking_started:
            return
        tracking_started = True
        cluster_count = len(scenario.matrix_view().asn_of)
        online = [
            idx for idx in range(cluster_count)
            if maintainer.membership.is_online(idx)
        ]
        step = max(1, len(online) // max(1, config.tracked_surrogates))
        for owner in online[::step][: config.tracked_surrogates]:
            maintainer.track(owner)

    def on_leave(ip: IPv4Address) -> None:
        # Runs after the injector's fail_host at the same instant (FIFO
        # ties), so this mirrors exactly the faults that applied.
        if ip not in alive:
            return
        alive.discard(ip)
        now = sim.now_ms
        directory.leave(ip, now)
        ensure_tracking()
        maintainer.enqueue(
            MembershipEvent(at_ms=now, kind="host-leave", cluster=system.cluster_of_ip(ip))
        )
        sim.schedule_at(now + config.rejoin_delay_ms, lambda: on_rejoin(ip))

    def on_rejoin(ip: IPv4Address) -> None:
        if ip in alive:
            return
        alive.add(ip)
        now = sim.now_ms
        runtime.network.set_host_up(ip)
        system.join(ip)
        directory.join(ip, now)
        maintainer.enqueue(
            MembershipEvent(at_ms=now, kind="host-join", cluster=system.cluster_of_ip(ip))
        )

    def maintenance_tick() -> None:
        now = sim.now_ms
        # Lease refresh pass (deterministic host order) + TTL sweep.
        for ip in sorted(alive, key=str):
            directory.join(ip, now)
        directory.sweep(now)
        # Inter-tick close-set drift: snapshot, repair, compare against
        # the repaired truth (parity-exact with a fresh build).
        if maintainer.pending and maintainer.tracked:
            before = {
                owner: dict(maintainer.current(owner).entries)
                for owner in maintainer.tracked
            }
            maintainer.drain()
            for owner, snapshot in before.items():
                if owner not in maintainer.tracked:
                    continue  # went dark mid-interval
                truth = maintainer.current(owner).entries
                drift = set(snapshot.items()) ^ set(truth.items())
                staleness = len(drift) / max(1, len(truth))
                staleness_samples.append(staleness)
                obs.histogram("control.staleness").observe(staleness)
        else:
            maintainer.drain()
        # Per-tick control-plane timeline: virtual-time stamps, so the
        # whole series is byte-stable across same-seed soaks.
        timeline = obs.timeline()
        if timeline:
            for shard, size in enumerate(directory.sizes()):
                timeline.sample(
                    "control.shard_registrations", now, size, shard=str(shard)
                )
            timeline.sample("control.alive_hosts", now, len(alive))
            timeline.sample("control.repairs", now, maintainer.local_repairs)
            timeline.sample("control.rebuilds", now, maintainer.rebuilds)
            if staleness_samples:
                timeline.sample(
                    "control.staleness_latest", now, staleness_samples[-1]
                )

    # Schedule the workload first so its simulator event sequence is
    # identical to a chaos run's (same seed stream, same insertion
    # order); control-plane bookkeeping events follow.
    planned_joins = min(config.joins, len(hosts))
    with obs.span("chaos.run", sessions=config.sessions, joins=planned_joins,
                  fault_events=len(schedule)):
        schedule_workload(
            runtime,
            scenario,
            duration_ms=duration,
            sessions=config.sessions,
            joins=config.joins,
            media_duration_ms=config.media_duration_ms,
            seed=config.seed,
            latent_target=config.latent_target,
        )

        # Directory bootstrap: every host registers at t=0.
        for host in hosts:
            directory.join(host.ip, 0.0)

        # Mirror the schedule's host departures with control-plane
        # effects (+ a rejoin each), and run periodic maintenance.
        for event in schedule.events:
            if event.kind != "host-leave":
                continue
            ip = IPv4Address.from_string(event.target.partition(":")[2])
            sim.schedule_at(event.at_ms, (lambda ip=ip: on_leave(ip)))
        if not fault_config.is_zero:
            tick_ms = config.maintenance_interval_ms
            ticks = int(duration // tick_ms)
            for i in range(1, ticks + 1):
                sim.schedule_at(round(i * tick_ms, 3), maintenance_tick)
        schedule_telemetry_ticks(runtime, duration)

        runtime.run()

    # Drain any repairs enqueued after the final tick, then gate.
    maintainer.drain()
    end_ms = max(sim.now_ms, duration)
    workload_result = collect_chaos_result(runtime, config.seed, len(schedule))

    resolved = all(directory.resolve(ip, end_ms) is not None for ip in alive)
    end_total = directory.total()
    registry_bounded = (
        directory.peak_total <= 2 * len(hosts) and end_total == len(alive)
    )
    p95 = _percentile(staleness_samples, 95)
    staleness_bounded = p95 <= config.staleness_p95_max

    directory_doc = directory.stats().to_dict()
    directory_doc.update(
        {
            "peak_total": directory.peak_total,
            "end_total": end_total,
            "sizes": list(directory.sizes()),
        }
    )
    report = SoakReport(
        seed=config.seed,
        sim_minutes=config.sim_minutes,
        shards=config.shards,
        hosts=len(hosts),
        alive_end=len(alive),
        fault_events=len(schedule),
        workload=workload_result.to_dict(),
        directory=directory_doc,
        maintainer=maintainer.stats(),
        staleness={
            "samples": len(staleness_samples),
            "p95": p95,
            "max": _percentile(staleness_samples, 100),
        },
        registry_bounded=registry_bounded,
        directory_converged=resolved and directory.failed_joins == 0,
        staleness_bounded=staleness_bounded,
        calls_terminal=True,  # collect_chaos_result raised otherwise
        fault_log=injector.log_lines(),
        directory_log=list(directory.log),
        repair_log=list(maintainer.repair_log),
    )
    obs.counter("soak.runs").inc()
    obs.annotate(soak=report.manifest_block())
    for name, ok in (
        ("soak.gate.registry_bounded", registry_bounded),
        ("soak.gate.directory_converged", report.directory_converged),
        ("soak.gate.staleness_bounded", staleness_bounded),
    ):
        obs.counter(name + (".pass" if ok else ".fail")).inc()
    return report
