"""Robustness studies: do the headline results survive seeds and
topology families?

Two axes the paper could not vary (one Internet, one snapshot) that a
simulation can and should:

- :func:`seed_study` — rerun the headline metrics across scenario
  seeds and report mean ± std (is seed 0 a lucky draw?);
- :func:`family_study` — rebuild the whole pipeline on alternative
  topology families (tiered / Barabási–Albert / Waxman) and check the
  ordering of methods holds on each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.evaluation.section3 import run_section3
from repro.evaluation.section7 import run_section7
from repro.scenario import Scenario, ScenarioConfig, build_scenario, build_scenario_from_topology
from repro.topology.models import generate_barabasi_albert, generate_waxman


@dataclass(frozen=True)
class HeadlineMetrics:
    """The reproduction's headline numbers for one scenario."""

    label: str
    latent_fraction: float
    rescued_by_opt_one_hop: float
    asap_over_best_baseline: float   # median quality-path ratio
    asap_over_opt_rtt: float         # median shortest-RTT ratio
    asap_rescue_rate: float

    def row(self) -> str:
        return (
            f"{self.label:>14}  latent={self.latent_fraction:5.3f}  "
            f"opt_rescue={self.rescued_by_opt_one_hop:5.2f}  "
            f"asap/base_qp={self.asap_over_best_baseline:7.1f}  "
            f"asap/opt_rtt={self.asap_over_opt_rtt:5.3f}  "
            f"asap_rescue={self.asap_rescue_rate:5.2f}"
        )


def headline_metrics(
    scenario: Scenario,
    label: str,
    session_count: int = 1500,
    latent_target: int = 40,
    seed: int = 0,
) -> HeadlineMetrics:
    """Compute the headline numbers on one scenario."""
    section3 = run_section3(scenario, session_count=session_count, seed=seed)
    section7 = run_section7(
        scenario,
        session_count=session_count,
        latent_target=latent_target,
        max_latent_sessions=latent_target,
        seed=seed,
    )

    def med_qp(method: str) -> float:
        return float(np.median(section7.series(method, "quality_paths")))

    asap_rtts = section7.series("ASAP", "best_rtt_ms")
    opt_rtts = section7.series("OPT", "best_rtt_ms")
    both = np.isfinite(asap_rtts) & np.isfinite(opt_rtts)
    rtt_ratio = (
        float(np.median(asap_rtts[both] / opt_rtts[both])) if np.any(both) else float("nan")
    )
    best_baseline = max(med_qp(m) for m in ("DEDI", "RAND", "MIX"))
    return HeadlineMetrics(
        label=label,
        latent_fraction=section3.latent_fraction,
        rescued_by_opt_one_hop=section3.rescued_fraction,
        asap_over_best_baseline=med_qp("ASAP") / max(best_baseline, 1.0),
        asap_over_opt_rtt=rtt_ratio,
        asap_rescue_rate=float(np.mean(np.isfinite(asap_rtts) & (asap_rtts < 300.0))),
    )


def seed_study(
    base_config: ScenarioConfig,
    seeds: Sequence[int] = (0, 1, 2),
    session_count: int = 1500,
    latent_target: int = 40,
) -> List[HeadlineMetrics]:
    """Headline metrics across scenario seeds."""
    results: List[HeadlineMetrics] = []
    for seed in seeds:
        scenario = build_scenario(base_config.with_seed(seed))
        results.append(
            headline_metrics(
                scenario,
                f"seed={seed}",
                session_count=session_count,
                latent_target=latent_target,
                seed=seed,
            )
        )
    return results


def family_study(
    config: ScenarioConfig,
    as_count: int = 450,
    session_count: int = 1500,
    latent_target: int = 40,
    seed: int = 0,
) -> List[HeadlineMetrics]:
    """Headline metrics across topology families of comparable size."""
    tiered = build_scenario(config.with_seed(seed))
    ba = build_scenario_from_topology(
        generate_barabasi_albert(as_count=as_count, seed=seed), config.with_seed(seed)
    )
    waxman = build_scenario_from_topology(
        generate_waxman(as_count=as_count, seed=seed), config.with_seed(seed)
    )
    return [
        headline_metrics(tiered, "tiered", session_count, latent_target, seed),
        headline_metrics(ba, "barabasi-albert", session_count, latent_target, seed),
        headline_metrics(waxman, "waxman", session_count, latent_target, seed),
    ]


def summarize_across(metrics: Sequence[HeadlineMetrics]) -> List[Tuple[str, str]]:
    """Mean ± std rows over a batch of headline metrics."""
    fields = (
        ("latent_fraction", "latent fraction"),
        ("rescued_by_opt_one_hop", "opt 1-hop rescue rate"),
        ("asap_over_best_baseline", "ASAP/baseline quality-path ratio"),
        ("asap_over_opt_rtt", "ASAP/OPT shortest-RTT ratio"),
        ("asap_rescue_rate", "ASAP rescue rate"),
    )
    rows: List[Tuple[str, str]] = []
    for attr, label in fields:
        values = np.array([getattr(m, attr) for m in metrics])
        rows.append((label, f"{values.mean():.3f} ± {values.std():.3f}"))
    return rows
