"""N-way conference scenario over the media plane.

A conference bridges every participant pair through one relay cluster,
so the relay choice must satisfy *all* legs at once — the natural
multi-party extension of the paper's two-party relay selection: instead
of minimizing one path's RTT, the bridge minimizes the worst pairwise
relayed RTT.  Each leg then runs a real :mod:`repro.media` session
(frames, jitter buffer, PLC, codec adaptation) over its relayed path,
optionally shaped by an injected loss burst, and reports *measured*
per-leg MOS next to the closed-form score.

Deterministic: participant selection, bridge election and every media
session derive from the scenario matrices and the seed alone;
:meth:`ConferenceResult.to_json` is byte-stable for CI diffing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.media.session import MediaPlaneConfig, MediaResult, PathWindow, run_media_session
from repro.scenario import Scenario
from repro.voip.quality import mos_of_path

#: Default injected loss burst: (start_ms, duration_ms, loss_rate).
DEFAULT_BURST = (5_000.0, 4_000.0, 0.30)


@dataclass(frozen=True)
class ConferenceLeg:
    """One participant pair bridged through the relay."""

    a: int                        # participant indices into the roster
    b: int
    rtt_ms: float                 # relayed path RTT
    base_loss: float              # relayed path loss (no burst)
    measured_mos: float
    closed_form_mos: float
    codec_switches: int
    concealed_rate: float


@dataclass(frozen=True)
class ConferenceResult:
    participants: Tuple[str, ...]  # cluster prefixes of the roster
    relay: str                     # bridge cluster prefix
    worst_leg_rtt_ms: float
    legs: Tuple[ConferenceLeg, ...]
    duration_ms: float
    burst: Optional[Tuple[float, float, float]]

    @property
    def min_leg_mos(self) -> float:
        return min(leg.measured_mos for leg in self.legs)

    @property
    def total_switches(self) -> int:
        return sum(leg.codec_switches for leg in self.legs)

    def to_json(self) -> str:
        doc = {
            "participants": list(self.participants),
            "relay": self.relay,
            "worst_leg_rtt_ms": round(self.worst_leg_rtt_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "burst": None if self.burst is None else [
                round(x, 6) for x in self.burst
            ],
            "min_leg_mos": round(self.min_leg_mos, 6),
            "total_switches": self.total_switches,
            "legs": [
                {
                    "a": leg.a,
                    "b": leg.b,
                    "rtt_ms": round(leg.rtt_ms, 3),
                    "base_loss": round(leg.base_loss, 6),
                    "measured_mos": round(leg.measured_mos, 6),
                    "closed_form_mos": round(leg.closed_form_mos, 6),
                    "codec_switches": leg.codec_switches,
                    "concealed_rate": round(leg.concealed_rate, 6),
                }
                for leg in self.legs
            ],
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _pick_participants(rtt: np.ndarray, count: int) -> List[int]:
    """Deterministic roster: the worst finite-RTT pair, then repeatedly
    the cluster maximizing its minimum RTT to everyone already picked
    (max-min spread — the hardest conference to bridge)."""
    finite = np.where(np.isfinite(rtt), rtt, -1.0)
    np.fill_diagonal(finite, -1.0)
    a, b = np.unravel_index(int(np.argmax(finite)), finite.shape)
    roster = [int(min(a, b)), int(max(a, b))]
    while len(roster) < count:
        best_idx, best_score = -1, -1.0
        for idx in range(rtt.shape[0]):
            if idx in roster:
                continue
            to_roster = [rtt[idx, r] for r in roster]
            if not all(np.isfinite(to_roster)):
                continue
            score = float(min(to_roster))
            if score > best_score:
                best_idx, best_score = idx, score
        if best_idx < 0:
            raise ConfigurationError("not enough mutually reachable clusters")
        roster.append(best_idx)
    return roster


def _elect_bridge(rtt: np.ndarray, roster: Sequence[int]) -> Tuple[int, float]:
    """The cluster minimizing the worst pairwise relayed RTT (ties →
    lowest index).  Every leg a-b runs a→bridge→b."""
    best_idx, best_worst = -1, float("inf")
    pairs = [(a, b) for i, a in enumerate(roster) for b in roster[i + 1:]]
    for idx in range(rtt.shape[0]):
        legs = [rtt[a, idx] + rtt[idx, b] for a, b in pairs]
        if not all(np.isfinite(legs)):
            continue
        worst = float(max(legs))
        if worst < best_worst:
            best_idx, best_worst = idx, worst
    if best_idx < 0:
        raise ConfigurationError("no cluster can bridge all legs")
    return best_idx, best_worst


def run_conference(
    scenario: Scenario,
    participants: int = 3,
    duration_ms: float = 20_000.0,
    seed: int = 0,
    burst: Optional[Tuple[float, float, float]] = DEFAULT_BURST,
    media: Optional[MediaPlaneConfig] = None,
) -> ConferenceResult:
    """Bridge an N-way conference and measure every leg's media quality.

    ``burst`` injects a loss episode ``(start_ms, duration_ms, rate)``
    on the bridge (all legs see it — relay-local congestion); ``None``
    runs fault-free.  Telemetry samples are tagged ``leg="a-b"``; codec
    switches appear as ``media.codec_switch`` trace points under a
    ``conference`` root span.
    """
    if participants < 2:
        raise ConfigurationError("a conference needs at least 2 participants")
    if media is None:
        media = MediaPlaneConfig(burst_frames=4.0)
    matrices = scenario.matrices
    rtt = matrices.rtt_ms
    if rtt.shape[0] < participants + 1:
        raise ConfigurationError("scenario too small for this conference")
    roster = _pick_participants(rtt, participants)
    bridge, worst_rtt = _elect_bridge(rtt, roster)

    timeline = obs.timeline()
    tracer = obs.tracer()
    span = tracer.begin(
        "conference", tracer.now(),
        participants=participants, bridge=str(matrices.prefixes[bridge]),
    )

    legs: List[ConferenceLeg] = []
    pairs = [(a, b) for i, a in enumerate(roster) for b in roster[i + 1:]]
    for pair_index, (a, b) in enumerate(pairs):
        leg_rtt = float(rtt[a, bridge] + rtt[bridge, b])
        loss_in = float(matrices.loss[a, bridge])
        loss_out = float(matrices.loss[bridge, b])
        base_loss = 1.0 - (1.0 - loss_in) * (1.0 - loss_out)
        path = [PathWindow(start_ms=0.0, rtt_ms=leg_rtt, loss_rate=base_loss)]
        if burst is not None:
            start, length, rate = burst
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError("burst loss rate must be in [0, 1]")
            path = [
                PathWindow(0.0, leg_rtt, base_loss),
                PathWindow(start, leg_rtt, max(base_loss, rate)),
                PathWindow(start + length, leg_rtt, base_loss),
            ]
        leg_span = span.child(
            "conference.leg", tracer.now(), a=roster.index(a), b=roster.index(b)
        )
        result: MediaResult = run_media_session(
            call_id=pair_index + 1,
            duration_ms=duration_ms,
            path=path,
            config=media,
            seed=seed,
            timeline=timeline,
            span=leg_span,
            leg=f"{roster.index(a)}-{roster.index(b)}",
        )
        leg_span.end(tracer.now(), mos=result.score.mos, switches=len(result.switches))
        legs.append(
            ConferenceLeg(
                a=roster.index(a),
                b=roster.index(b),
                rtt_ms=leg_rtt,
                base_loss=base_loss,
                measured_mos=result.score.mos,
                closed_form_mos=round(mos_of_path(leg_rtt, base_loss), 6),
                codec_switches=len(result.switches),
                concealed_rate=result.score.concealed_rate,
            )
        )
    span.end(tracer.now(), legs=len(legs))

    return ConferenceResult(
        participants=tuple(str(matrices.prefixes[i]) for i in roster),
        relay=str(matrices.prefixes[bridge]),
        worst_leg_rtt_ms=worst_rtt,
        legs=tuple(legs),
        duration_ms=duration_ms,
        burst=burst,
    )
