"""Per-session per-method metric records and summaries (Section 7.1).

The paper's three metrics: (1) number of quality paths, (2) shortest
RTT / highest MOS of those paths, (3) overhead in messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import MethodResult
from repro.core.protocol import ASAPSession
from repro.voip.quality import DEFAULT_EVAL_LOSS_RATE, RTT_THRESHOLD_MS, mos_of_path


@dataclass(frozen=True)
class MethodRecord:
    """One method's metrics on one session.

    ``one_hop_quality_paths`` counts individual one-hop relay IPs only
    (two-hop candidates are IP *pairs* and scale quadratically with the
    population, so per-capita comparisons — Fig. 17 — use the one-hop
    count).  For baselines it equals ``quality_paths``.
    """

    method: str
    session_id: int
    quality_paths: int
    best_rtt_ms: Optional[float]
    highest_mos: Optional[float]
    messages: int
    one_hop_quality_paths: Optional[int] = None

    @property
    def one_hop_count(self) -> int:
        if self.one_hop_quality_paths is not None:
            return self.one_hop_quality_paths
        return self.quality_paths

    @property
    def found_quality_path(self) -> bool:
        return (
            self.best_rtt_ms is not None
            and np.isfinite(self.best_rtt_ms)
            and self.best_rtt_ms < RTT_THRESHOLD_MS
        )


def record_from_baseline(
    session_id: int, result: MethodResult, loss_rate: float = DEFAULT_EVAL_LOSS_RATE
) -> MethodRecord:
    """Convert a baseline MethodResult into a MethodRecord."""
    mos = (
        mos_of_path(result.best_rtt_ms, loss_rate)
        if result.best_rtt_ms is not None and np.isfinite(result.best_rtt_ms)
        else None
    )
    return MethodRecord(
        method=result.method,
        session_id=session_id,
        quality_paths=result.quality_paths,
        best_rtt_ms=result.best_rtt_ms,
        highest_mos=mos,
        messages=result.messages,
        one_hop_quality_paths=result.one_hop_quality_paths,
    )


def record_from_asap(
    session: ASAPSession, session_id: int, loss_rate: float = DEFAULT_EVAL_LOSS_RATE
) -> MethodRecord:
    """Convert an ASAPSession into a MethodRecord."""
    best = session.best_relay_rtt_ms
    mos = mos_of_path(best, loss_rate) if best is not None else None
    one_hop = session.selection.one_hop_ips if session.selection else 0
    return MethodRecord(
        method="ASAP",
        session_id=session_id,
        quality_paths=session.quality_paths,
        best_rtt_ms=best,
        highest_mos=mos,
        messages=session.messages,
        one_hop_quality_paths=one_hop,
    )


@dataclass(frozen=True)
class MethodSummary:
    """Distribution summary of one method over many sessions."""

    method: str
    sessions: int
    quality_paths_median: float
    quality_paths_p90: float
    best_rtt_median_ms: float
    best_rtt_p95_ms: float
    frac_best_below_300: float
    frac_rtt_above_1s: float
    mos_median: float
    frac_mos_below_2_9: float
    frac_mos_above_3_6: float
    messages_median: float
    messages_p90: float


def summarize_method(records: Sequence[MethodRecord]) -> MethodSummary:
    """Aggregate records (all from one method) into a summary row."""
    if not records:
        raise ValueError("cannot summarize zero records")
    methods = {r.method for r in records}
    if len(methods) != 1:
        raise ValueError(f"records mix methods: {sorted(methods)}")
    qp = np.array([r.quality_paths for r in records], dtype=float)
    rtts = np.array(
        [r.best_rtt_ms if r.best_rtt_ms is not None else np.inf for r in records]
    )
    mos = np.array(
        [r.highest_mos if r.highest_mos is not None else 1.0 for r in records]
    )
    msgs = np.array([r.messages for r in records], dtype=float)
    finite_rtts = rtts[np.isfinite(rtts)]
    return MethodSummary(
        method=methods.pop(),
        sessions=len(records),
        quality_paths_median=float(np.median(qp)),
        quality_paths_p90=float(np.percentile(qp, 90)),
        best_rtt_median_ms=float(np.median(finite_rtts)) if finite_rtts.size else float("inf"),
        best_rtt_p95_ms=float(np.percentile(finite_rtts, 95)) if finite_rtts.size else float("inf"),
        frac_best_below_300=float(np.mean(rtts < RTT_THRESHOLD_MS)),
        frac_rtt_above_1s=float(np.mean(~np.isfinite(rtts) | (rtts > 1000.0))),
        mos_median=float(np.median(mos)),
        frac_mos_below_2_9=float(np.mean(mos < 2.9)),
        frac_mos_above_3_6=float(np.mean(mos > 3.6)),
        messages_median=float(np.median(msgs)),
        messages_p90=float(np.percentile(msgs, 90)),
    )
