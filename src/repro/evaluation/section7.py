"""Section 7 experiments: ASAP vs DEDI/RAND/MIX/OPT (Figs. 11-18).

One run produces, for every latent session and every method, a
:class:`~repro.evaluation.metrics.MethodRecord`; the figure-specific
series (quality-path CDF, shortest-RTT CCDF, MOS CDF, overhead CDF) are
all views over those records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.baselines import BaselineConfig, RelayPolicy
from repro.core import ASAPConfig
from repro.evaluation.metrics import (
    MethodRecord,
    MethodSummary,
    record_from_baseline,
    summarize_method,
)
from repro.evaluation.policies import METHOD_NAMES, default_policies
from repro.evaluation.sessions import Session, SessionWorkload, generate_workload
from repro.scenario import Scenario


@dataclass
class Section7Result:
    """Per-method records over the latent sessions."""

    latent_sessions: List[Session]
    records: Dict[str, List[MethodRecord]] = field(default_factory=dict)

    def summary(self, method: str) -> MethodSummary:
        return summarize_method(self.records[method])

    def summaries(self) -> List[MethodSummary]:
        return [self.summary(name) for name in METHOD_NAMES if name in self.records]

    def series(self, method: str, metric: str) -> np.ndarray:
        """Raw per-session series for a metric ('quality_paths',
        'best_rtt_ms', 'highest_mos', 'messages')."""
        rows = self.records[method]
        if metric == "quality_paths":
            return np.array([r.quality_paths for r in rows], dtype=float)
        if metric == "one_hop_quality_paths":
            return np.array([r.one_hop_count for r in rows], dtype=float)
        if metric == "best_rtt_ms":
            return np.array(
                [r.best_rtt_ms if r.best_rtt_ms is not None else np.inf for r in rows]
            )
        if metric == "highest_mos":
            return np.array(
                [r.highest_mos if r.highest_mos is not None else 1.0 for r in rows]
            )
        if metric == "messages":
            return np.array([r.messages for r in rows], dtype=float)
        raise ValueError(f"unknown metric {metric!r}")


def run_section7(
    scenario: Scenario,
    session_count: int = 3000,
    latent_target: int = 100,
    seed: int = 0,
    asap_config: Optional[ASAPConfig] = None,
    baseline_config: Optional[BaselineConfig] = None,
    methods: Sequence[str] = METHOD_NAMES,
    workload: Optional[SessionWorkload] = None,
    max_latent_sessions: Optional[int] = None,
    policies: Optional[Sequence[RelayPolicy]] = None,
) -> Section7Result:
    """Evaluate every policy on the latent sessions of a workload.

    When ``asap_config`` is None, the BFS hop limit k is derived from
    the scenario's own measurements with the paper's 90%-of-sub-300ms-
    paths rule (Section 6.2) instead of hard-coding the paper's k = 4.

    ``policies`` overrides the roster entirely: any sequence of
    :class:`~repro.baselines.base.RelayPolicy` objects is evaluated in
    order (``methods`` is then ignored).  By default the roster is
    :func:`~repro.evaluation.policies.default_policies` over ``methods``.
    """
    if asap_config is None:
        from repro.core.config import derive_k_hops

        asap_config = ASAPConfig(k_hops=derive_k_hops(scenario.matrix_view()))
    if workload is None:
        workload = generate_workload(
            scenario, session_count, seed=seed, latent_target=latent_target
        )
    latent = workload.latent(asap_config.lat_threshold_ms)
    if max_latent_sessions is not None:
        latent = latent[:max_latent_sessions]

    if policies is None:
        policies = default_policies(
            scenario,
            methods=methods,
            asap_config=asap_config,
            baseline_config=baseline_config,
        )

    result = Section7Result(latent_sessions=latent)

    # Every policy takes the batch path: one evaluate_sessions call over
    # every latent pair (baselines vectorize it; the ASAP adapter runs
    # the protocol per session, identically to calling from member IPs).
    # The world handed to the policies is the scenario's matrix view —
    # dense arrays or the streamed VirtualMatrices, same read surface.
    world = scenario.matrix_view()
    pairs = [(s.caller_cluster, s.callee_cluster) for s in latent]
    session_ids = [s.session_id for s in latent]
    for policy in policies:
        with obs.span("section7.policy", policy=policy.name, sessions=len(pairs)):
            outcomes = policy.evaluate_sessions(world, pairs, session_ids=session_ids)
        result.records[policy.name] = [
            record_from_baseline(sid, outcome)
            for sid, outcome in zip(session_ids, outcomes)
        ]
        obs.counter(f"section7.sessions.{policy.name}").inc(len(outcomes))
    return result
