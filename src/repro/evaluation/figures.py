"""Figure-data export: one CSV per paper figure.

``export_all`` runs every experiment and writes the raw series each
figure plots — the artifact a plotting notebook or gnuplot script would
consume.  Columns are long-format (figure, series, x, y) so one loader
handles everything.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.evaluation.section3 import run_section3
from repro.evaluation.section5 import run_section5
from repro.evaluation.section7 import METHOD_NAMES, run_section7
from repro.scenario import Scenario
from repro.util.stats import cdf_points

PathLike = Union[str, Path]


def _write_series(path: Path, rows: Sequence[Tuple[str, str, float, float]]) -> int:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["figure", "series", "x", "y"])
        for row in rows:
            writer.writerow(row)
    return len(rows)


def export_section3(scenario: Scenario, out_dir: Path, session_count: int = 1500, seed: int = 0) -> Dict[str, int]:
    """Write fig02 (RTT CDFs) and fig03 (reduction + latent rescue) data."""
    result = run_section3(scenario, session_count=session_count, seed=seed)
    written: Dict[str, int] = {}

    rows: List[Tuple[str, str, float, float]] = []
    for value, p in cdf_points(result.direct_rtts[np.isfinite(result.direct_rtts)]):
        rows.append(("fig02", "direct_rtt_cdf", value, p))
    finite_opt = result.optimal_one_hop[np.isfinite(result.optimal_one_hop)]
    for value, p in cdf_points(finite_opt):
        rows.append(("fig02", "opt1hop_rtt_cdf", value, p))
    written["fig02.csv"] = _write_series(out_dir / "fig02.csv", rows)

    rows = []
    for value, p in cdf_points(result.reduction_ratios):
        rows.append(("fig03a", "reduction_ratio_cdf", value, p))
    for i, (direct, opt) in enumerate(
        zip(result.latent_direct, result.latent_optimal)
    ):
        if np.isfinite(direct):
            rows.append(("fig03b", "latent_direct", float(i), float(direct)))
        if np.isfinite(opt):
            rows.append(("fig03b", "latent_opt1hop", float(i), float(opt)))
    written["fig03.csv"] = _write_series(out_dir / "fig03.csv", rows)
    return written


def export_section5(scenario: Scenario, out_dir: Path, seed: int = 0) -> Dict[str, int]:
    """Write fig07 (stabilization / probe counts) data."""
    study = run_section5(scenario, seed=seed)
    rows: List[Tuple[str, str, float, float]] = []
    for sid, value in enumerate(study.stabilization_seconds(), start=1):
        rows.append(("fig07a", "stabilization_s", float(sid), value))
    for sid, value in enumerate(study.probed_counts(), start=1):
        rows.append(("fig07b", "probed_nodes", float(sid), float(value)))
    for sid, value in enumerate(study.probed_after_stabilization(), start=1):
        rows.append(("fig07c", "probed_after_stab", float(sid), float(value)))
    return {"fig07.csv": _write_series(out_dir / "fig07.csv", rows)}


def export_section7(
    scenario: Scenario,
    out_dir: Path,
    session_count: int = 1500,
    latent_target: int = 40,
    seed: int = 0,
) -> Dict[str, int]:
    """Write fig11-16 and fig18 per-method CDF data."""
    result = run_section7(
        scenario,
        session_count=session_count,
        latent_target=latent_target,
        max_latent_sessions=latent_target,
        seed=seed,
    )
    written: Dict[str, int] = {}
    figures = (
        ("fig12", "quality_paths"),
        ("fig14", "best_rtt_ms"),
        ("fig16", "highest_mos"),
        ("fig18", "messages"),
    )
    for figure, metric in figures:
        rows: List[Tuple[str, str, float, float]] = []
        for method in METHOD_NAMES:
            if method not in result.records:
                continue
            series = result.series(method, metric)
            finite = series[np.isfinite(series)]
            for value, p in cdf_points(finite):
                rows.append((figure, method, value, p))
        written[f"{figure}.csv"] = _write_series(out_dir / f"{figure}.csv", rows)
    return written


def export_all(
    scenario: Scenario,
    out_dir: PathLike,
    session_count: int = 1500,
    latent_target: int = 40,
    seed: int = 0,
) -> Dict[str, int]:
    """Run everything and write every figure's data; returns row counts."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: Dict[str, int] = {}
    written.update(export_section3(scenario, out, session_count=session_count, seed=seed))
    written.update(export_section5(scenario, out, seed=seed))
    written.update(
        export_section7(
            scenario, out, session_count=session_count, latent_target=latent_target, seed=seed
        )
    )
    return written
