"""Scale benchmark of delegate-matrix assembly: 10k → 1M clusters.

The full N×N matrix is quadratic in memory, so beyond the unit-test
worlds the benchmark measures what actually scales — *per-destination
column assembly* over synthetic cluster populations laid over the small
topology.  Each tier draws ``cluster_count`` synthetic clusters
(``derive_rng``-deterministic ASN / access-delay / size arrays), exports
them once through :meth:`repro.worldarrays.WorldArrays.from_arrays`,
then fills a sample of destination columns through both assembly
methods:

- ``object`` — the scalar reference (`_fill_destinations`), a python
  row loop per column;
- ``flat`` — :class:`repro.worldarrays.FlatMatrixAssembler`, vectorized
  per-destination-AS broadcasts.

Both paths fill the same ``(n, k)`` output block, so parity is checked
bit-for-bit at every tier.  On multi-CPU machines the object path is
additionally run through the shared-memory fork pool (cost-balanced
chunks, workers writing columns in place) to demonstrate that parallel
assembly now *beats* serial — the regression recorded by earlier
baselines.  Results land in ``benchmarks/BENCH_matrix.json`` whose
legacy keys (``serial_seconds`` et al.) are preserved for the
obs-smoke CI job.

Run directly for the CI perf-smoke job::

    python -m repro.evaluation.matrixbench --scales 10k --check \
        --out benchmarks/BENCH_matrix.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.measurement.conditions import ConditionsConfig, generate_conditions
from repro.measurement.latency import LatencyModel
from repro.measurement.matrix import _fill_destinations
from repro.topology.generator import TopologyConfig, generate_topology
from repro.util.parallel import (
    fork_available,
    plan_chunks,
    resolve_workers,
    run_forked,
    shared_ndarray,
)
from repro.util.rng import derive_rng
from repro.worldarrays import FlatMatrixAssembler, WorldArrays

#: Cluster counts per scale tier.
SCALES: Dict[str, int] = {"10k": 10_000, "100k": 100_000, "1m": 1_000_000}

#: Destination columns sampled per tier (object-path cost is linear in
#: rows × columns, so samples shrink as tiers grow).
COLUMN_SAMPLES: Dict[str, int] = {"10k": 64, "100k": 16, "1m": 4}

BENCH_SCHEMA = 2


def bench_model(seed: int = 0) -> LatencyModel:
    """The small-topology latency model every tier is laid over.

    Only the topology, conditions, and router are needed — cluster
    populations are synthetic arrays, so BGP table and host generation
    are skipped entirely.
    """
    topology = generate_topology(
        TopologyConfig(tier1_count=3, tier2_count=10, tier3_count=40, seed=seed)
    )
    conditions = generate_conditions(topology, ConditionsConfig(seed=seed))
    return LatencyModel(topology, conditions, seed=seed)


def synthetic_clusters(
    model: LatencyModel, cluster_count: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic synthetic cluster arrays: (asns, access_ms, sizes)."""
    rng = derive_rng(seed, "matrixbench", f"n{cluster_count}")
    ases = np.array(sorted(model.router.graph.ases()), dtype=np.int64)
    cluster_asns = ases[rng.integers(0, len(ases), cluster_count)]
    access_ms = np.round(rng.uniform(2.0, 30.0, cluster_count), 3)
    sizes = rng.integers(1, 64, cluster_count, dtype=np.int64)
    return cluster_asns, access_ms, sizes


def _sample_columns(cluster_count: int, sample: int, seed: int) -> List[int]:
    rng = derive_rng(seed, "matrixbench-columns", f"n{cluster_count}")
    sample = min(sample, cluster_count)
    picks = rng.choice(cluster_count, size=sample, replace=False)
    return [int(c) for c in np.sort(picks)]


def _object_state(cluster_asns: np.ndarray):
    unique_ases = sorted(set(int(a) for a in cluster_asns))
    rows_of_as: Dict[int, List[int]] = {}
    for i, asn in enumerate(cluster_asns):
        rows_of_as.setdefault(int(asn), []).append(i)
    return unique_ases, rows_of_as


#: Fork-inherited state for the parallel column-fill workers.
_BENCH_STATE: Optional[tuple] = None


def _bench_fill_chunk(positions: List[int]) -> Tuple[int, float]:
    """Pool worker: fill one chunk of sampled columns into shared memory."""
    state = _BENCH_STATE
    started = time.perf_counter()
    if state[0] == "flat":
        _, assembler, columns, rtt, loss, hops = state
        assembler.fill_columns(
            [columns[p] for p in positions], rtt, loss, hops, positions=positions
        )
    else:
        _, model, unique_ases, rows_of_as, access, asn_of, columns, rtt, loss, hops = state
        _fill_destinations(
            [columns[p] for p in positions],
            model,
            unique_ases,
            rows_of_as,
            access,
            asn_of,
            rtt,
            loss,
            hops,
            positions=positions,
        )
    return len(positions), time.perf_counter() - started


def _grouped_position_chunks(
    columns: Sequence[int],
    cluster_asns: np.ndarray,
    chunk_count: int,
    tree_cost: float,
    row_count: int,
) -> List[List[int]]:
    """Cost-balanced chunks of sampled-column *positions*, grouped by
    destination AS so each routing tree is resolved by one worker."""
    groups: Dict[int, List[int]] = {}
    for position, column in enumerate(columns):
        groups.setdefault(int(cluster_asns[column]), []).append(position)
    ordered = [groups[asn] for asn in sorted(groups)]
    costs = [tree_cost + len(positions) * row_count for positions in ordered]
    plan = plan_chunks(costs, chunk_count)
    return [
        [p for group_index in chunk for p in ordered[group_index]] for chunk in plan
    ]


def _run_parallel(
    kind: str,
    state_tail: tuple,
    columns: Sequence[int],
    cluster_asns: np.ndarray,
    row_count: int,
    workers: int,
    tree_cost: float,
) -> Tuple[float, dict, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """One fork-pool column fill; returns (seconds, chunk stats, outputs)."""
    k = len(columns)
    rtt = shared_ndarray((row_count, k), float, fill=np.inf)
    loss = shared_ndarray((row_count, k), float, fill=1.0)
    hops = shared_ndarray((row_count, k), np.int64, fill=-1)
    chunks = _grouped_position_chunks(
        columns, cluster_asns, workers * 4, tree_cost, row_count
    )
    global _BENCH_STATE
    _BENCH_STATE = (kind, *state_tail, columns, rtt, loss, hops)
    started = time.perf_counter()
    try:
        timings = run_forked(_bench_fill_chunk, chunks, processes=workers)
    finally:
        _BENCH_STATE = None
    elapsed = time.perf_counter() - started
    chunk_seconds = sorted(seconds for _, seconds in timings)
    stats = {
        "chunk_sizes": [len(c) for c in chunks],
        "p50_chunk_seconds": round(float(np.percentile(chunk_seconds, 50)), 4),
        "p95_chunk_seconds": round(float(np.percentile(chunk_seconds, 95)), 4),
    }
    return elapsed, stats, (rtt, loss, hops)


def bench_tier(
    model: LatencyModel,
    scale: str,
    cluster_count: int,
    workers: int,
    seed: int = 0,
) -> dict:
    """Benchmark one scale tier; returns its result document."""
    cluster_asns, access_ms, sizes = synthetic_clusters(model, cluster_count, seed)
    columns = _sample_columns(cluster_count, COLUMN_SAMPLES[scale], seed)
    k = len(columns)
    n = cluster_count
    cells = n * k

    world = WorldArrays.from_arrays(model, cluster_asns, access_ms, sizes)
    assembler = FlatMatrixAssembler(model, world)
    unique_ases, rows_of_as = _object_state(cluster_asns)

    def blank():
        return (
            np.full((n, k), np.inf, dtype=float),
            np.full((n, k), 1.0, dtype=float),
            np.full((n, k), -1, dtype=np.int64),
        )

    # Warm the policy-tree memos so both timed paths see the same state.
    warm = blank()
    _fill_destinations(
        columns[:1], model, unique_ases, rows_of_as, access_ms, cluster_asns, *warm
    )
    assembler.fill_columns(columns[:1], *blank())

    obj = blank()
    t0 = time.perf_counter()
    _fill_destinations(
        columns, model, unique_ases, rows_of_as, access_ms, cluster_asns, *obj
    )
    object_s = time.perf_counter() - t0

    flat = blank()
    t0 = time.perf_counter()
    assembler.fill_columns(columns, *flat)
    flat_s = time.perf_counter() - t0

    bit_identical = all(np.array_equal(a, b) for a, b in zip(obj, flat))

    tier = {
        "scale": scale,
        "clusters": cluster_count,
        "columns_sampled": k,
        "object_seconds": round(object_s, 4),
        "flat_seconds": round(flat_s, 4),
        "flat_speedup_vs_object": round(object_s / flat_s, 2) if flat_s > 0 else None,
        "cells_per_sec_object": int(cells / object_s) if object_s > 0 else None,
        "cells_per_sec_flat": int(cells / flat_s) if flat_s > 0 else None,
        "bit_identical": bit_identical,
        "parallel": None,
    }

    if workers >= 2 and fork_available():
        tree_cost = float(len(model.router.graph))
        par_s, stats, outputs = _run_parallel(
            "object",
            (model, unique_ases, rows_of_as, access_ms, cluster_asns),
            columns,
            cluster_asns,
            n,
            workers,
            tree_cost,
        )
        parallel_identical = all(
            np.array_equal(a, b) for a, b in zip(obj, outputs)
        )
        flat_par_s, _, flat_outputs = _run_parallel(
            "flat",
            (assembler,),
            columns,
            cluster_asns,
            n,
            workers,
            tree_cost,
        )
        parallel_identical &= all(
            np.array_equal(a, b) for a, b in zip(obj, flat_outputs)
        )
        tier["parallel"] = {
            "workers": workers,
            "object_parallel_seconds": round(par_s, 4),
            "object_speedup": round(object_s / par_s, 3) if par_s > 0 else None,
            "flat_parallel_seconds": round(flat_par_s, 4),
            "bit_identical": parallel_identical,
            **stats,
        }
        tier["bit_identical"] = bit_identical and parallel_identical
    return tier


def run_bench(
    scales: Sequence[str] = ("10k",),
    workers: Optional[int] = 0,
    seed: int = 0,
) -> dict:
    """Run the requested tiers and build the full benchmark document.

    The legacy top-level keys (``clusters``, ``cpu_count``,
    ``serial_seconds``, ``parallel_seconds``, ``speedup``,
    ``bit_identical``) mirror the first tier's object-path numbers —
    the obs-smoke CI job reads ``serial_seconds`` by name.
    """
    for scale in scales:
        if scale not in SCALES:
            raise EvaluationError(
                f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
            )
    worker_count = resolve_workers(workers)
    model = bench_model(seed)
    tiers = [
        bench_tier(model, scale, SCALES[scale], worker_count, seed)
        for scale in scales
    ]
    first = tiers[0]
    parallel = first["parallel"]
    document = {
        "bench_schema": BENCH_SCHEMA,
        "clusters": first["clusters"],
        "cpu_count": os.cpu_count() or 1,
        "workers": worker_count,
        "serial_seconds": first["object_seconds"],
        "parallel_seconds": (
            parallel["object_parallel_seconds"] if parallel else None
        ),
        "speedup": parallel["object_speedup"] if parallel else None,
        "bit_identical": all(tier["bit_identical"] for tier in tiers),
        "chunk_plan": (
            {
                "chunk_sizes": parallel["chunk_sizes"],
                "p50_chunk_seconds": parallel["p50_chunk_seconds"],
                "p95_chunk_seconds": parallel["p95_chunk_seconds"],
            }
            if parallel
            else None
        ),
        "scales": tiers,
    }
    return document


def validate_bench_document(document: dict) -> List[str]:
    """Schema problems of a BENCH_matrix.json document ([] = valid)."""
    problems: List[str] = []

    def need(mapping, key, kinds, where):
        if key not in mapping:
            problems.append(f"{where}: missing key {key!r}")
        elif mapping[key] is not None and not isinstance(mapping[key], kinds):
            problems.append(
                f"{where}: {key!r} has type {type(mapping[key]).__name__}"
            )

    for key, kinds in (
        ("bench_schema", int),
        ("clusters", int),
        ("cpu_count", int),
        ("workers", int),
        ("serial_seconds", (int, float)),
        ("parallel_seconds", (int, float)),
        ("speedup", (int, float)),
        ("bit_identical", bool),
        ("scales", list),
    ):
        need(document, key, kinds, "document")
    if document.get("serial_seconds") is None:
        problems.append("document: serial_seconds must not be null")
    for index, tier in enumerate(document.get("scales") or []):
        where = f"scales[{index}]"
        if not isinstance(tier, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, kinds in (
            ("scale", str),
            ("clusters", int),
            ("columns_sampled", int),
            ("object_seconds", (int, float)),
            ("flat_seconds", (int, float)),
            ("flat_speedup_vs_object", (int, float)),
            ("bit_identical", bool),
        ):
            need(tier, key, kinds, where)
        if tier.get("bit_identical") is False:
            problems.append(f"{where}: flat output diverged from object")
        parallel = tier.get("parallel")
        if parallel is not None:
            for key, kinds in (
                ("workers", int),
                ("object_parallel_seconds", (int, float)),
                ("object_speedup", (int, float)),
                ("chunk_sizes", list),
                ("p50_chunk_seconds", (int, float)),
                ("p95_chunk_seconds", (int, float)),
            ):
                need(parallel, key, kinds, f"{where}.parallel")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.evaluation.matrixbench", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--scales",
        default="10k",
        help="comma-separated tiers to run (10k,100k,1m); big tiers are "
        "minutes of object-path work — CI runs 10k only",
    )
    parser.add_argument("--out", default=None, help="write the JSON document here")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool size for the parallel runs (0 = all CPUs, 1 = skip)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the document schema and enforce the CI gates: "
        "flat beats object at every tier, and on >=2 CPUs parallel "
        "object assembly beats serial (the historical regression)",
    )
    options = parser.parse_args(argv)

    scales = [s.strip() for s in options.scales.split(",") if s.strip()]
    document = run_bench(scales, workers=options.workers, seed=options.seed)
    rendered = json.dumps(document, indent=2) + "\n"
    if options.out:
        Path(options.out).write_text(rendered)
    print(rendered, end="")

    if not options.check:
        return 0
    problems = validate_bench_document(document)
    for tier in document["scales"]:
        if tier["flat_speedup_vs_object"] is not None and (
            tier["flat_speedup_vs_object"] < 1.0
        ):
            problems.append(
                f"scale {tier['scale']}: flat path slower than object "
                f"({tier['flat_speedup_vs_object']}x)"
            )
    if document["cpu_count"] >= 2 and document["workers"] >= 2:
        speedup = document["speedup"]
        if speedup is None or speedup < 1.0:
            problems.append(
                f"parallel object assembly did not beat serial on "
                f"{document['cpu_count']} CPUs (speedup {speedup})"
            )
    else:
        print("single-CPU machine: parallel speedup gate skipped", file=sys.stderr)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
