"""VoIP session workload generation (paper Section 7.1).

The paper generates 100,000 random peer pairs from the collected IP pool
and focuses on the ~1,000 whose direct IP routing RTT exceeds 300 ms.
Here sessions are random *host* pairs (so populous clusters appear
proportionally often), scored at cluster granularity against the
delegate matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import EvaluationError
from repro.netaddr import IPv4Address
from repro.scenario import Scenario
from repro.util.rng import derive_rng
from repro.voip.quality import RTT_THRESHOLD_MS


@dataclass(frozen=True)
class Session:
    """One calling session between two end hosts."""

    session_id: int
    caller: IPv4Address
    callee: IPv4Address
    caller_cluster: int
    callee_cluster: int
    direct_rtt_ms: float

    @property
    def is_latent(self) -> bool:
        """Direct path misses the VoIP RTT requirement."""
        return not (np.isfinite(self.direct_rtt_ms) and self.direct_rtt_ms < RTT_THRESHOLD_MS)


@dataclass
class SessionWorkload:
    """A generated batch of sessions plus its latent subset."""

    sessions: List[Session] = field(default_factory=list)

    def latent(self, threshold_ms: float = RTT_THRESHOLD_MS) -> List[Session]:
        """Sessions whose direct RTT exceeds ``threshold_ms``."""
        return [
            s
            for s in self.sessions
            if not (np.isfinite(s.direct_rtt_ms) and s.direct_rtt_ms < threshold_ms)
        ]

    def direct_rtts(self) -> np.ndarray:
        return np.array([s.direct_rtt_ms for s in self.sessions])

    def __len__(self) -> int:
        return len(self.sessions)


def generate_workload(
    scenario: Scenario,
    count: int,
    seed: int = 0,
    latent_target: Optional[int] = None,
    threshold_ms: float = RTT_THRESHOLD_MS,
) -> SessionWorkload:
    """Generate ``count`` random sessions between distinct hosts.

    When ``latent_target`` is given, generation continues past ``count``
    until at least that many latent sessions exist (or a hard cap is
    hit) — convenient for experiments that only study latent sessions.
    """
    if count < 1:
        raise EvaluationError("count must be >= 1")
    rng = derive_rng(seed, "workload")
    view = scenario.matrix_view()
    clusters = scenario.clusters

    # Only *online* peers can appear in sessions.  A host whose cluster
    # cannot reach most of the network (stub behind a failed provider) is
    # effectively offline — the paper's crawler would never have collected
    # it, and King would get no answers for it.  The view computes the
    # fractions densely or streamed; the numbers are identical.
    finite_fraction = view.finite_row_fractions()
    online_clusters = {
        i for i in range(view.count) if finite_fraction[i] >= 0.5
    }
    hosts = [
        h
        for h in scenario.population.hosts
        if view.index_of[clusters.cluster_of(h.ip).prefix] in online_clusters
    ]
    if len(hosts) < 2:
        raise EvaluationError("population too small for sessions")

    workload = SessionWorkload()
    latent_found = 0
    cap = count * 50
    generated = 0
    while generated < count or (latent_target is not None and latent_found < latent_target):
        if generated >= cap:
            break
        i, j = rng.choice(len(hosts), size=2, replace=False)
        caller, callee = hosts[int(i)], hosts[int(j)]
        ca = view.index_of[clusters.cluster_of(caller.ip).prefix]
        cb = view.index_of[clusters.cluster_of(callee.ip).prefix]
        direct = view.rtt_cell(ca, cb)
        session = Session(
            session_id=generated,
            caller=caller.ip,
            callee=callee.ip,
            caller_cluster=ca,
            callee_cluster=cb,
            direct_rtt_ms=direct,
        )
        workload.sessions.append(session)
        generated += 1
        if session.is_latent:
            latent_found += 1
    return workload
