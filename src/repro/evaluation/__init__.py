"""Evaluation harness: one runner per table/figure of the paper.

- :mod:`repro.evaluation.sessions` — VoIP session workload generation
  (random host pairs; the latent subset with direct RTT > 300 ms).
- :mod:`repro.evaluation.metrics` — per-session per-method records
  (quality paths, shortest RTT, highest MOS, messages).
- :mod:`repro.evaluation.section3` — Figs. 2-3 (measurement foundation).
- :mod:`repro.evaluation.section5` — Tables 1-2, Figs. 5-7 (Skype study).
- :mod:`repro.evaluation.policies` — every method behind the uniform
  :class:`~repro.baselines.base.RelayPolicy` surface (including the
  ASAP adapter) plus the default Section-7 roster.
- :mod:`repro.evaluation.engine` — the unified
  :class:`~repro.evaluation.engine.Experiment` runner (dense or
  streamed substrate, stage timings, BENCH_e2e emission).
- :mod:`repro.evaluation.section7` — Figs. 11-18 (ASAP vs baselines,
  scalability, overhead).
- :mod:`repro.evaluation.ablations` — parameter sweeps for the design
  choices (k, sizeT, latT, valley-free constraint).
- :mod:`repro.evaluation.report` — fixed-width report rendering used by
  the benchmark harness.
"""

from repro.evaluation.sessions import Session, SessionWorkload, generate_workload
from repro.evaluation.engine import (
    Experiment,
    ExperimentConfig,
    ExperimentReport,
    run_experiment,
)
from repro.evaluation.metrics import MethodRecord, MethodSummary, summarize_method
from repro.evaluation.policies import METHOD_NAMES, ASAPPolicy, default_policies
from repro.evaluation.section3 import Section3Result, run_section3
from repro.evaluation.section5 import Section5Result, run_section5, run_skype_batch
from repro.evaluation.section7 import Section7Result, run_section7
from repro.evaluation.scalability import ScalabilityResult, run_scalability
from repro.evaluation.robustness import (
    HeadlineMetrics,
    family_study,
    headline_metrics,
    seed_study,
)
from repro.evaluation.chaos import ChaosResult, run_chaos, sweep_chaos
from repro.evaluation.conference import ConferenceLeg, ConferenceResult, run_conference
from repro.evaluation.figures import export_all

__all__ = [
    "ASAPPolicy",
    "ChaosResult",
    "ConferenceLeg",
    "ConferenceResult",
    "Experiment",
    "ExperimentConfig",
    "ExperimentReport",
    "HeadlineMetrics",
    "METHOD_NAMES",
    "MethodRecord",
    "MethodSummary",
    "default_policies",
    "ScalabilityResult",
    "Section3Result",
    "Section5Result",
    "Section7Result",
    "Session",
    "SessionWorkload",
    "export_all",
    "family_study",
    "generate_workload",
    "headline_metrics",
    "run_experiment",
    "run_scalability",
    "run_chaos",
    "run_conference",
    "run_section3",
    "run_section5",
    "run_section7",
    "run_skype_batch",
    "seed_study",
    "sweep_chaos",
    "summarize_method",
]
