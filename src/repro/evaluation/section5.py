"""Section 5 experiments: the Skype measurement study (Tables 1-2, Figs. 5-7).

The paper ran 14 Skype sessions between Williamsburg VA and 11 sites in
North America and China.  We mirror the setup: pick two geographically
distant regions of the generated topology, place 17 "sites" (hosts) the
way Fig. 5 does — sites 1-6 co-located at the main vantage, 7-12 spread
over region A, 13-17 in region B — and run Table 1's caller-callee plan
through the Skype-like simulator, then push every trace through the
analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.measurement.tools import KingEstimator
from repro.netaddr import IPv4Address
from repro.scenario import Scenario
from repro.skype.analyzer import SessionAnalysis, TraceAnalyzer
from repro.skype.session import SkypeSessionResult, run_skype_session
from repro.skype.supernode import SkypeConfig, SupernodeOverlay
from repro.topology.population import Host
from repro.util.rng import derive_rng

#: Table 1 of the paper: caller-callee site numbers of the 14 sessions.
TABLE1_SESSION_PLAN: List[Tuple[int, int]] = [
    (3, 5), (1, 11), (1, 7), (1, 14), (1, 3), (1, 16), (1, 15),
    (1, 15), (1, 9), (1, 17), (1, 13), (1, 12), (6, 8), (2, 10),
]

#: Fig. 5 of the paper: sites 1-12 in region A, 13-17 in region B.
REGION_A_SITES = tuple(range(1, 13))
REGION_B_SITES = tuple(range(13, 18))


@dataclass
class SitePlan:
    """17 measurement sites mapped onto scenario hosts."""

    site_host: Dict[int, Host] = field(default_factory=dict)
    region_of: Dict[int, str] = field(default_factory=dict)

    def host(self, site: int) -> Host:
        try:
            return self.site_host[site]
        except KeyError:
            raise EvaluationError(f"unknown site {site}") from None


@dataclass
class Section5Result:
    """Everything needed to regenerate Tables 1-2 and Figs. 5-7."""

    plan: SitePlan
    sessions: List[Tuple[int, int]]
    results: List[SkypeSessionResult]
    analyses: List[SessionAnalysis]

    def stabilization_seconds(self) -> List[float]:
        """Fig. 7(a): per-session stabilization times."""
        return [a.stabilization_ms / 1000.0 for a in self.analyses]

    def probed_counts(self) -> List[int]:
        """Fig. 7(b): total probed relay nodes per session."""
        return [a.total_probed for a in self.analyses]

    def probed_after_stabilization(self) -> List[int]:
        """Fig. 7(c): nodes probed after the stabilization time."""
        return [
            len(
                set(a.forward.probed_after_stabilization)
                | set(a.backward.probed_after_stabilization)
            )
            for a in self.analyses
        ]

    def asymmetric_sessions(self) -> List[int]:
        return [a.session_id for a in self.analyses if a.asymmetric]

    def same_as_table(self) -> List[Tuple[int, int, List[IPv4Address]]]:
        """Table 2 rows: (session, AS, relay IPs probed in that AS)."""
        rows: List[Tuple[int, int, List[IPv4Address]]] = []
        for analysis in self.analyses:
            for asn, ips in sorted(analysis.same_as_probes.items()):
                rows.append((analysis.session_id, asn, ips))
        return rows


def build_site_plan(scenario: Scenario, seed: int = 0) -> SitePlan:
    """Place the 17 sites: two distant regions, sites 1-6 co-located."""
    rng = derive_rng(seed, "site-plan")
    matrices = scenario.matrices
    clusters = scenario.clusters.all_clusters()
    if len(clusters) < 12:
        raise EvaluationError("scenario too small for a 17-site plan")

    geo = scenario.topology.geography
    # Anchor on the pair of populated clusters with the worst finite
    # direct RTT — our Williamsburg and Dalian.  The paper's site pairs
    # were chosen because their direct paths were problematic, which is
    # what makes the Skype limits visible.
    rtt = scenario.matrices.rtt_ms
    sample = [int(i) for i in rng.choice(len(clusters), size=min(80, len(clusters)), replace=False)]
    best_pair, worst_rtt = None, -1.0
    for i in sample:
        for j in sample:
            if i >= j:
                continue
            value = rtt[i, j]
            if np.isfinite(value) and value > worst_rtt:
                best_pair, worst_rtt = (i, j), float(value)
    if best_pair is None:
        raise EvaluationError("no finite delegate RTT pair for the site plan")
    anchor_a, anchor_b = best_pair

    def nearest_clusters(anchor: int, count: int) -> List[int]:
        ref = clusters[anchor].asn
        ranked = sorted(
            range(len(clusters)), key=lambda k: geo.distance_km(clusters[k].asn, ref)
        )
        return ranked[:count]

    region_a = nearest_clusters(anchor_a, 8)
    region_b = nearest_clusters(anchor_b, 6)

    plan = SitePlan()
    # Sites 1-6: six hosts of the anchor-A cluster (or as many as exist).
    main_cluster = clusters[anchor_a]
    for site in range(1, 7):
        host = main_cluster.hosts[(site - 1) % len(main_cluster.hosts)]
        plan.site_host[site] = host
        plan.region_of[site] = "A"
    # Sites 7-12: spread over region A clusters.
    for offset, site in enumerate(range(7, 13)):
        cluster = clusters[region_a[1 + offset % (len(region_a) - 1)]]
        plan.site_host[site] = cluster.hosts[0]
        plan.region_of[site] = "A"
    # Sites 13-17: region B clusters.
    for offset, site in enumerate(range(13, 18)):
        cluster = clusters[region_b[offset % len(region_b)]]
        plan.site_host[site] = cluster.hosts[0]
        plan.region_of[site] = "B"
    return plan


def run_section5(
    scenario: Scenario,
    config: Optional[SkypeConfig] = None,
    duration_ms: float = 400_000.0,
    seed: int = 0,
    session_plan: Optional[List[Tuple[int, int]]] = None,
) -> Section5Result:
    """Run the 14-session Skype study end to end."""
    from repro import obs

    if config is None:
        config = SkypeConfig()
    plan = build_site_plan(scenario, seed=seed)
    sessions = session_plan if session_plan is not None else list(TABLE1_SESSION_PLAN)
    overlay = SupernodeOverlay(scenario.population, config)
    analyzer = TraceAnalyzer(
        scenario.prefix_table,
        king=KingEstimator(scenario.latency, seed=seed),
        population=scenario.population,
    )
    results: List[SkypeSessionResult] = []
    analyses: List[SessionAnalysis] = []
    with obs.span("section5.sessions", sessions=len(sessions)):
        for sid, (caller_site, callee_site) in enumerate(sessions, start=1):
            caller = plan.host(caller_site)
            callee = plan.host(callee_site)
            result = run_skype_session(
                scenario,
                caller.ip,
                callee.ip,
                overlay=overlay,
                config=config,
                duration_ms=duration_ms,
                session_id=sid,
            )
            results.append(result)
            analyses.append(analyzer.analyze(result.trace))
            obs.counter("section5.sessions").inc()
    return Section5Result(plan=plan, sessions=sessions, results=results, analyses=analyses)


def run_skype_batch(
    scenario: Scenario,
    session_count: int = 40,
    config: Optional[SkypeConfig] = None,
    duration_ms: float = 300_000.0,
    seed: int = 0,
    min_direct_rtt_ms: float = 250.0,
) -> Section5Result:
    """A randomized Skype study beyond Table 1's fixed plan.

    Samples ``session_count`` caller-callee host pairs whose direct RTT
    exceeds ``min_direct_rtt_ms`` (the problematic population where the
    limits live) and runs the full simulate-capture-analyze pipeline on
    each.  Used for aggregate limit statistics at scale.
    """
    if config is None:
        config = SkypeConfig()
    rng = derive_rng(seed, "skype-batch")
    matrices = scenario.matrices
    clusters = scenario.clusters.all_clusters()
    candidates = np.argwhere(
        np.isfinite(matrices.rtt_ms) & (matrices.rtt_ms > min_direct_rtt_ms)
    )
    if candidates.size == 0:
        raise EvaluationError("no session pairs above the RTT floor")
    order = rng.permutation(len(candidates))

    overlay = SupernodeOverlay(scenario.population, config)
    analyzer = TraceAnalyzer(
        scenario.prefix_table,
        king=KingEstimator(scenario.latency, seed=seed),
        population=scenario.population,
    )
    plan = SitePlan()
    sessions: List[Tuple[int, int]] = []
    results: List[SkypeSessionResult] = []
    analyses: List[SessionAnalysis] = []
    sid = 0
    for idx in order:
        if sid >= session_count:
            break
        a, b = (int(x) for x in candidates[int(idx)])
        ca, cb = clusters[a], clusters[b]
        if not ca.hosts or not cb.hosts:
            continue
        sid += 1
        caller, callee = ca.hosts[0], cb.hosts[0]
        plan.site_host[sid] = caller
        sessions.append((a, b))
        result = run_skype_session(
            scenario,
            caller.ip,
            callee.ip,
            overlay=overlay,
            config=config,
            duration_ms=duration_ms,
            session_id=sid,
        )
        results.append(result)
        analyses.append(analyzer.analyze(result.trace))
    return Section5Result(plan=plan, sessions=sessions, results=results, analyses=analyses)
