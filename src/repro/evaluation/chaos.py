"""Chaos evaluation: the ASAP runtime under injected faults.

The paper argues relays must survive a misbehaving network; this module
measures *how well* the reproduction's runtime does.  One chaos run
builds a runtime over a scenario, installs a compiled fault schedule
(:mod:`repro.faults`), drives a workload of joins and calls through it,
and distils:

- outcome counts — every join and call must reach a terminal state
  (``completed`` / ``degraded`` / ``failed``); a hung record is a bug
  and raises;
- **setup-time-under-churn**, **failover-time** and
  **interruption-time** distributions (the robustness analogues of the
  paper's Fig. 14 setup times);
- the byte-stable fault log, so two runs with the same seeds can be
  diffed line by line.

:func:`sweep_chaos` scales one base schedule across intensities to show
how gracefully quality degrades as the fault rate climbs.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.config import ASAPConfig
from repro.core.runtime import ASAPRuntime, RuntimePolicy
from repro.errors import EvaluationError
from repro.evaluation.sessions import generate_workload
from repro.faults import FaultInjector, FaultScheduleConfig, compile_schedule
from repro.scenario import Scenario
from repro.util.rng import derive_rng


def _dist(values: Sequence[float]) -> Dict[str, float]:
    """Compact distribution summary with stable rounding."""
    if not values:
        return {"count": 0}
    arr = np.asarray(sorted(values), dtype=float)
    return {
        "count": int(arr.size),
        "mean": round(float(arr.mean()), 3),
        "p50": round(float(np.percentile(arr, 50)), 3),
        "p90": round(float(np.percentile(arr, 90)), 3),
        "max": round(float(arr.max()), 3),
    }


@dataclass
class ChaosResult:
    """Everything one chaos run produced."""

    seed: int
    fault_events: int
    join_outcomes: Counter = field(default_factory=Counter)
    call_outcomes: Counter = field(default_factory=Counter)
    media_outcomes: Counter = field(default_factory=Counter)
    setup_times_ms: List[float] = field(default_factory=list)
    failover_times_ms: List[float] = field(default_factory=list)
    interruption_times_ms: List[float] = field(default_factory=list)
    mos_dips: List[float] = field(default_factory=list)
    fault_log: List[str] = field(default_factory=list)
    messages_sent: int = 0
    messages_dropped: int = 0
    request_timeouts: int = 0

    @property
    def failovers(self) -> int:
        return len(self.failover_times_ms)

    def to_dict(self) -> dict:
        """Canonical document (stable ordering + rounding) for JSON dumps."""
        return {
            "seed": self.seed,
            "fault_events": self.fault_events,
            "joins": dict(sorted(self.join_outcomes.items())),
            "calls": dict(sorted(self.call_outcomes.items())),
            "media": dict(sorted(self.media_outcomes.items())),
            "setup_ms": _dist(self.setup_times_ms),
            "failover_ms": _dist(self.failover_times_ms),
            "interruption_ms": _dist(self.interruption_times_ms),
            "mos_dip": _dist(self.mos_dips),
            "messages": {
                "sent": self.messages_sent,
                "dropped": self.messages_dropped,
                "request_timeouts": self.request_timeouts,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def summary_rows(self) -> List[Tuple[str, str]]:
        def outcomes(counter: Counter) -> str:
            total = sum(counter.values())
            parts = [f"{k}={v}" for k, v in sorted(counter.items())]
            return f"{total} ({', '.join(parts)})" if parts else "0"

        setup = _dist(self.setup_times_ms)
        failover = _dist(self.failover_times_ms)
        interruption = _dist(self.interruption_times_ms)
        rows = [
            ("fault events", str(self.fault_events)),
            ("joins", outcomes(self.join_outcomes)),
            ("calls", outcomes(self.call_outcomes)),
            ("media sessions", outcomes(self.media_outcomes)),
            ("setup p50/p90 ms", f"{setup.get('p50', '-')} / {setup.get('p90', '-')}"),
            ("failovers", str(self.failovers)),
        ]
        if self.failovers:
            rows.append(
                ("failover p50/max ms", f"{failover['p50']} / {failover['max']}")
            )
            rows.append(
                ("interruption p50/max ms",
                 f"{interruption['p50']} / {interruption['max']}")
            )
        rows.append(
            ("messages", f"{self.messages_sent} sent, {self.messages_dropped} dropped, "
                         f"{self.request_timeouts} request timeouts")
        )
        return rows


def schedule_workload(
    runtime: ASAPRuntime,
    scenario: Scenario,
    *,
    duration_ms: float,
    sessions: int,
    joins: int,
    media_duration_ms: float,
    seed: int,
    latent_target: Optional[int] = None,
) -> Tuple[int, int]:
    """Schedule the deterministic join/call workload on a runtime.

    Shared by :func:`run_chaos` and the churn soak
    (:mod:`repro.evaluation.soak`): both draw from the *same*
    ``derive_rng(seed, "chaos", "workload-times")`` stream in the same
    order, so a zero-churn soak schedules the byte-identical workload a
    static chaos run does.  Joins and call starts spread over the first
    80% of the window so faults overlap live protocol activity.
    Returns ``(joins_scheduled, calls_scheduled)``.
    """
    window = duration_ms * 0.8
    rng = derive_rng(seed, "chaos", "workload-times")
    workload = generate_workload(
        scenario, max(sessions, 1), seed=seed, latent_target=latent_target
    )
    pool = workload.sessions
    if latent_target:
        latent = workload.latent()
        latent_ids = {s.session_id for s in latent}
        pool = latent + [s for s in pool if s.session_id not in latent_ids]

    hosts = scenario.population.hosts
    join_times = sorted(
        round(float(t), 3) for t in rng.uniform(0.0, window, size=min(joins, len(hosts)))
    )
    for at, host in zip(join_times, hosts):
        runtime.schedule_join(host.ip, at_ms=at)

    call_times = sorted(
        round(float(t), 3)
        for t in rng.uniform(0.0, window, size=len(pool[:sessions]))
    )
    for at, session in zip(call_times, pool[:sessions]):
        runtime.schedule_call(
            session.caller,
            session.callee,
            at_ms=at,
            media_duration_ms=media_duration_ms,
        )
    return len(join_times), len(call_times)


def schedule_telemetry_ticks(runtime: ASAPRuntime, duration_ms: float) -> int:
    """Schedule periodic net-plane telemetry samples on the simulator.

    Every sample is stamped with virtual time and reads counters the
    deterministic event schedule fully determines, so same-seed runs
    emit byte-identical series.  With telemetry off this schedules
    nothing (the null timeline is falsy), keeping the disabled-path
    overhead at zero events.  Returns the number of ticks scheduled.
    """
    timeline = obs.timeline()
    if not timeline:
        return 0
    sim = runtime.sim
    network = runtime.network

    def sample() -> None:
        now = sim.now_ms
        timeline.sample("runtime.messages_sent", now, network.total_sent)
        timeline.sample("runtime.messages_dropped", now, network.dropped)
        timeline.sample("runtime.request_timeouts", now, network.total_timeouts)
        for category, count in sorted(network.timeouts_by_category.items()):
            timeline.sample("net.timeouts", now, count, category=category)
        for category, count in sorted(network.sent_by_category.items()):
            timeline.sample("net.sent", now, count, category=category)

    tick_ms = timeline.cadence_ms
    ticks = int(duration_ms // tick_ms)
    for i in range(1, ticks + 1):
        sim.schedule_at(round(i * tick_ms, 3), sample)
    return ticks


def collect_chaos_result(
    runtime: ASAPRuntime, seed: int, fault_events: int
) -> ChaosResult:
    """Distil a drained runtime's records into a :class:`ChaosResult`.

    Raises :class:`EvaluationError` if any record failed to reach a
    terminal outcome — the no-hang invariant chaos and soak CI enforce.
    The caller attaches the fault log (injector-specific).
    """
    hung = runtime.pending_records()
    if hung:
        raise EvaluationError(
            f"{len(hung)} records never reached a terminal outcome: {hung[:3]!r}"
        )

    result = ChaosResult(seed=seed, fault_events=fault_events)
    for join in runtime.joins:
        result.join_outcomes[join.outcome] += 1
    for call in runtime.call_setups:
        result.call_outcomes[call.outcome] += 1
        if call.setup_ms is not None:
            result.setup_times_ms.append(round(call.setup_ms, 3))
    for media in runtime.media_sessions:
        result.media_outcomes[media.outcome] += 1
        for event in media.failovers:
            if event.new_relay is not None:
                result.failover_times_ms.append(round(event.failover_ms, 3))
            result.interruption_times_ms.append(round(event.interruption_ms, 3))
        if media.impact is not None:
            result.mos_dips.append(round(media.impact.mos_dip, 4))
    result.messages_sent = runtime.network.total_sent
    result.messages_dropped = runtime.network.dropped
    result.request_timeouts = runtime.network.total_timeouts
    return result


def run_chaos(
    scenario: Scenario,
    fault_config: FaultScheduleConfig,
    *,
    sessions: int = 40,
    joins: int = 40,
    media_duration_ms: float = 10_000.0,
    seed: int = 0,
    asap_config: Optional[ASAPConfig] = None,
    policy: Optional[RuntimePolicy] = None,
    latent_target: Optional[int] = None,
) -> ChaosResult:
    """Drive a workload through a runtime under an injected fault schedule.

    Joins and call starts are spread deterministically over the first
    80% of the schedule window so faults actually overlap live protocol
    activity.  With ``latent_target``, workload generation keeps going
    until that many latent sessions exist and those are placed first —
    relayed calls are the ones whose failover behaviour chaos (and its
    traces) are meant to exercise.  Raises :class:`EvaluationError` if
    any record fails to reach a terminal outcome — the no-hang
    invariant chaos CI enforces.
    """
    runtime = ASAPRuntime(scenario, asap_config, policy)
    schedule = compile_schedule(fault_config, scenario)
    injector = FaultInjector(runtime, schedule)
    injector.install()

    planned_joins = min(joins, len(scenario.population.hosts))
    with obs.span("chaos.run", sessions=sessions, joins=planned_joins,
                  fault_events=len(schedule)):
        schedule_workload(
            runtime,
            scenario,
            duration_ms=fault_config.duration_ms,
            sessions=sessions,
            joins=joins,
            media_duration_ms=media_duration_ms,
            seed=seed,
            latent_target=latent_target,
        )
        schedule_telemetry_ticks(runtime, fault_config.duration_ms)
        runtime.run()

    result = collect_chaos_result(runtime, seed, fault_events=len(schedule))
    result.fault_log = injector.log_lines()
    obs.counter("chaos.runs").inc()
    obs.counter("chaos.failovers").inc(result.failovers)
    return result


def sweep_chaos(
    scenario: Scenario,
    base_config: FaultScheduleConfig,
    intensities: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    **kwargs,
) -> List[Tuple[float, ChaosResult]]:
    """One chaos run per fault intensity (0 = fault-free control)."""
    results: List[Tuple[float, ChaosResult]] = []
    for intensity in intensities:
        results.append(
            (intensity, run_chaos(scenario, base_config.scaled(intensity), **kwargs))
        )
    return results
