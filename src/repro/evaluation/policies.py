"""The Section-7 policy roster: every method as one ``RelayPolicy``.

The probing baselines already satisfy
:class:`~repro.baselines.base.RelayPolicy` (their batch
``evaluate_sessions`` is the abstract primitive of
:class:`~repro.baselines.base.RelayMethod`); :class:`ASAPPolicy` adapts
a live :class:`~repro.core.protocol.ASAPSystem` to the same surface so
experiment runners iterate one uniform policy list.

The adapter works at cluster granularity even though ``ASAPSystem.call``
takes host IPs: replica surrogates of a cluster serve the *primary's*
close set (§6.3 load sharing), so relay selection between two clusters
yields identical results no matter which member IP places the call —
the adapter simply calls from each cluster's primary surrogate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines import (
    BaselineConfig,
    DEDIMethod,
    MIXMethod,
    OPTMethod,
    RANDMethod,
    RelayPolicy,
)
from repro.baselines.base import MethodResult, session_batch
from repro.core.config import ASAPConfig
from repro.core.protocol import ASAPSystem
from repro.scenario import Scenario

#: Canonical method order of the paper's Section-7 tables and figures.
METHOD_NAMES = ("DEDI", "RAND", "MIX", "ASAP", "OPT")


class ASAPPolicy:
    """ASAP exposed as a :class:`RelayPolicy` over cluster pairs."""

    name = "ASAP"

    def __init__(self, system: ASAPSystem) -> None:
        self._system = system

    @property
    def system(self) -> ASAPSystem:
        return self._system

    def evaluate_sessions(
        self,
        world,
        sessions: Sequence,
        *,
        session_ids: Optional[Sequence[int]] = None,
        columns=None,
    ) -> List[MethodResult]:
        """Place one call per session.  ``world`` is accepted for
        protocol uniformity and ignored — the system is already bound to
        its scenario's matrix view."""
        pairs, _ = session_batch(sessions, session_ids)
        results: List[MethodResult] = []
        for a, b in pairs:
            session = self._system.call(self._member_ip(int(a)), self._member_ip(int(b)))
            selection = session.selection
            results.append(
                MethodResult(
                    method=self.name,
                    quality_paths=session.quality_paths,
                    best_rtt_ms=session.best_relay_rtt_ms,
                    messages=session.messages,
                    probed_nodes=0,  # close sets are maintenance, not per-session probes
                    one_hop_quality_paths=selection.one_hop_ips if selection else 0,
                )
            )
        return results

    def _member_ip(self, cluster: int):
        """A member IP of the cluster (the primary surrogate's)."""
        return self._system.surrogate(cluster).ip


def default_policies(
    scenario: Scenario,
    methods: Sequence[str] = METHOD_NAMES,
    asap_config: Optional[ASAPConfig] = None,
    baseline_config: Optional[BaselineConfig] = None,
) -> List[RelayPolicy]:
    """Build the requested methods as policies, in ``methods`` order."""
    if baseline_config is None:
        baseline_config = BaselineConfig()
    graph = scenario.topology.graph
    policies: List[RelayPolicy] = []
    for name in methods:
        if name == "DEDI":
            policies.append(DEDIMethod(graph, baseline_config))
        elif name == "RAND":
            policies.append(RANDMethod(baseline_config))
        elif name == "MIX":
            policies.append(MIXMethod(graph, baseline_config))
        elif name == "OPT":
            policies.append(OPTMethod(baseline_config))
        elif name == "ASAP":
            policies.append(ASAPPolicy(ASAPSystem(scenario, asap_config)))
        else:
            raise ValueError(f"unknown method {name!r}; choose from {METHOD_NAMES}")
    return policies
