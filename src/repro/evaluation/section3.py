"""Section 3 experiments: the measurement foundation (Figs. 2-3).

- Fig. 2(a): distribution of direct IP routing RTTs over random sessions;
- Fig. 2(b): direct vs optimal one-hop relay RTT per session;
- Fig. 3(a): RTT reduction ratio of the optimal one-hop relay for
  sessions the relay improves;
- Fig. 3(b): direct vs optimal one-hop RTTs for *latent* sessions
  (direct > 300 ms) — the paper's headline: every such session has a
  one-hop relay below 300 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.baselines.base import BaselineConfig
from repro.baselines.opt import OPTMethod
from repro.evaluation.sessions import SessionWorkload, generate_workload
from repro.scenario import Scenario
from repro.voip.quality import RTT_THRESHOLD_MS


@dataclass
class Section3Result:
    """All series needed to regenerate Figs. 2 and 3."""

    direct_rtts: np.ndarray                    # Fig. 2(a)
    optimal_one_hop: np.ndarray                # Fig. 2(b), aligned with direct_rtts
    reduction_ratios: np.ndarray               # Fig. 3(a), improved sessions only
    latent_direct: np.ndarray                  # Fig. 3(b)
    latent_optimal: np.ndarray                 # Fig. 3(b), aligned

    @property
    def improved_fraction(self) -> float:
        """Share of sessions where the optimal one-hop beats direct."""
        finite = np.isfinite(self.direct_rtts) & np.isfinite(self.optimal_one_hop)
        if not np.any(finite):
            return 0.0
        return float(np.mean(self.optimal_one_hop[finite] < self.direct_rtts[finite]))

    @property
    def latent_fraction(self) -> float:
        """Share of sessions with direct RTT above the threshold."""
        if self.direct_rtts.size == 0:
            return 0.0
        above = ~np.isfinite(self.direct_rtts) | (self.direct_rtts > RTT_THRESHOLD_MS)
        return float(np.mean(above))

    @property
    def rescued_fraction(self) -> float:
        """Share of latent sessions whose optimal one-hop is < 300 ms."""
        if self.latent_direct.size == 0:
            return 1.0
        ok = np.isfinite(self.latent_optimal) & (self.latent_optimal < RTT_THRESHOLD_MS)
        return float(np.mean(ok))


def run_section3(
    scenario: Scenario,
    session_count: int = 2000,
    seed: int = 0,
    workload: Optional[SessionWorkload] = None,
) -> Section3Result:
    """Compute the Section 3 series over a random-session workload."""
    if workload is None:
        workload = generate_workload(scenario, session_count, seed=seed)
    world = scenario.matrix_view()
    opt = OPTMethod(BaselineConfig(), include_two_hop=False)

    direct = workload.direct_rtts()
    optimal = np.empty(len(workload))
    with obs.span("section3.optimal_one_hop", sessions=len(workload)):
        for idx, session in enumerate(workload.sessions):
            _, best = opt.best_one_hop(
                world, session.caller_cluster, session.callee_cluster
            )
            optimal[idx] = best if best is not None else np.inf
    obs.counter("section3.sessions").inc(len(workload))

    finite = np.isfinite(direct) & np.isfinite(optimal)
    improved = finite & (optimal < direct)
    with np.errstate(invalid="ignore", divide="ignore"):
        ratios = (direct[improved] - optimal[improved]) / direct[improved]

    latent_mask = ~np.isfinite(direct) | (direct > RTT_THRESHOLD_MS)
    return Section3Result(
        direct_rtts=direct,
        optimal_one_hop=optimal,
        reduction_ratios=ratios,
        latent_direct=direct[latent_mask],
        latent_optimal=optimal[latent_mask],
    )
