"""``repro.faults`` — deterministic fault injection for the ASAP runtime.

The paper's whole argument is about misbehaving networks: relays beat
direct routing *because* ASes congest and fail, and Skype's Limit 3 is
slow stabilization under relay churn.  This package makes those
dynamics first-class:

- :class:`FaultScheduleConfig` declares the experiment (crash rates,
  churn waves, bootstrap/AS outage windows, loss bursts) with a seed;
- :func:`compile_schedule` expands it against a scenario into a
  deterministic :class:`FaultSchedule` timeline;
- :class:`FaultInjector` replays the timeline into a running
  :class:`~repro.core.runtime.ASAPRuntime`, keeping a byte-stable
  structured fault log.

Same config + same scenario ⇒ identical schedule, log and downstream
metrics — chaos runs are fully auditable and reproducible.
"""

from repro.faults.config import (
    ASOutage,
    BootstrapOutage,
    ChurnWave,
    FaultScheduleConfig,
    LossBurst,
    ShardOutage,
)
from repro.faults.injector import FaultInjector, FaultLogEntry
from repro.faults.schedule import FaultEvent, FaultSchedule, compile_schedule

__all__ = [
    "ASOutage",
    "BootstrapOutage",
    "ChurnWave",
    "FaultEvent",
    "FaultInjector",
    "FaultLogEntry",
    "FaultSchedule",
    "FaultScheduleConfig",
    "LossBurst",
    "ShardOutage",
    "compile_schedule",
]
