"""Apply a compiled fault schedule to a running ASAP runtime.

The injector turns each :class:`~repro.faults.schedule.FaultEvent` into
simulator events against the runtime's :class:`~repro.sim.network.SimNetwork`
and :class:`~repro.core.protocol.ASAPSystem`, and keeps a structured
**fault log**: one entry per applied (or skipped) fault, in simulated
time order, serializable to canonical JSON lines.  Two runs with the
same schedule over the same scenario produce byte-identical logs — the
determinism check chaos CI relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.netaddr import IPv4Address


@dataclass(frozen=True)
class FaultLogEntry:
    """One fault as actually applied to the runtime."""

    at_ms: float
    kind: str
    target: str
    outcome: str                      # "applied" | "skipped"
    detail: str = ""

    def to_json(self) -> str:
        doc = {
            "at_ms": self.at_ms,
            "kind": self.kind,
            "target": self.target,
            "outcome": self.outcome,
        }
        if self.detail:
            doc["detail"] = self.detail
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class FaultInjector:
    """Wires a :class:`FaultSchedule` into a runtime's simulator."""

    def __init__(self, runtime, schedule: FaultSchedule) -> None:
        self._runtime = runtime
        self._schedule = schedule
        self.log: List[FaultLogEntry] = []
        self._installed = False

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    def install(self) -> int:
        """Schedule every fault event; returns the number installed.

        Must run before :meth:`runtime.run` drains the queue (events in
        the simulated past cannot be scheduled).  The network's loss
        sampler is reseeded from the schedule seed so loss draws — and
        therefore everything downstream — reproduce exactly.
        """
        if self._installed:
            raise RuntimeError("fault schedule already installed")
        self._installed = True
        self._runtime.network.reseed_loss(self._schedule.seed)
        for event in self._schedule.events:
            self._runtime.sim.schedule_at(event.at_ms, self._applier(event))
        obs.counter("faults.scheduled").inc(len(self._schedule.events))
        return len(self._schedule.events)

    def log_lines(self) -> List[str]:
        """The fault log as canonical JSON lines (byte-stable)."""
        return [entry.to_json() for entry in self.log]

    # -- event application -------------------------------------------------

    def _applier(self, event: FaultEvent):
        def apply() -> None:
            outcome, detail = self._apply(event)
            self.log.append(
                FaultLogEntry(
                    at_ms=self._runtime.sim.now_ms,
                    kind=event.kind,
                    target=event.target,
                    outcome=outcome,
                    detail=detail,
                )
            )
            obs.counter("faults.injected").inc()
            obs.counter(f"faults.{event.kind}").inc()
            obs.event("fault", level="debug", kind=event.kind, target=event.target)

        return apply

    def _apply(self, event: FaultEvent):
        runtime = self._runtime
        network = runtime.network
        kind = event.kind
        scope, _, value = event.target.partition(":")

        if kind == "surrogate-crash":
            cluster_index = int(value)
            primary = runtime.system.surrogate(cluster_index)
            if not runtime.system.is_online(primary.ip):
                return "skipped", "surrogate already offline"
            promoted = runtime.fail_host(primary.ip)
            detail = f"crashed {primary.ip}"
            if promoted is not None:
                detail += f", promoted {promoted.ip}"
            return "applied", detail

        if kind == "host-leave":
            ip = IPv4Address.from_string(value)
            if not runtime.system.is_online(ip):
                return "skipped", "already offline"
            promoted = runtime.fail_host(ip)
            return "applied", f"promoted {promoted.ip}" if promoted is not None else ""

        if kind in ("bootstrap-down", "bootstrap-up"):
            index = int(value)
            bootstraps = runtime.bootstrap_hosts
            if index >= len(bootstraps):
                return "skipped", f"only {len(bootstraps)} bootstraps"
            ip = bootstraps[index].ip
            if kind == "bootstrap-down":
                network.set_host_down(ip)
            else:
                network.set_host_up(ip)
            return "applied", str(ip)

        if kind == "as-down":
            network.set_as_down(int(value))
            return "applied", ""
        if kind == "as-up":
            network.set_as_up(int(value))
            return "applied", ""

        if kind == "loss-burst-start":
            asn = None if scope == "net" else int(value)
            network.push_loss(event.value or 0.0, asn=asn)
            return "applied", f"rate={event.value}"
        if kind == "loss-burst-end":
            asn = None if scope == "net" else int(value)
            network.pop_loss(event.value or 0.0, asn=asn)
            return "applied", ""

        if kind == "background-loss":
            network.set_background_loss(event.value or 0.0)
            return "applied", f"rate={event.value}"

        return "skipped", f"unknown kind {kind!r}"
