"""Apply a compiled fault schedule to a running ASAP runtime.

The injector turns each :class:`~repro.faults.schedule.FaultEvent` into
simulator events against the runtime's :class:`~repro.sim.network.SimNetwork`
and :class:`~repro.core.protocol.ASAPSystem`, and keeps a structured
**fault log**: one entry per applied (or skipped) fault, in simulated
time order, serializable to canonical JSON lines.  Two runs with the
same schedule over the same scenario produce byte-identical logs — the
determinism check chaos CI relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.netaddr import IPv4Address


@dataclass(frozen=True)
class FaultLogEntry:
    """One fault as actually applied to the runtime."""

    at_ms: float
    kind: str
    target: str
    outcome: str                      # "applied" | "skipped"
    detail: str = ""

    def to_json(self) -> str:
        doc = {
            "at_ms": self.at_ms,
            "kind": self.kind,
            "target": self.target,
            "outcome": self.outcome,
        }
        if self.detail:
            doc["detail"] = self.detail
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class FaultInjector:
    """Wires a :class:`FaultSchedule` into a runtime's simulator."""

    def __init__(self, runtime, schedule: FaultSchedule, directory=None) -> None:
        self._runtime = runtime
        self._schedule = schedule
        #: Optional :class:`~repro.control.directory.ShardedDirectory`
        #: for shard-down/up events (soak runs wire one in).
        self._directory = directory
        self.log: List[FaultLogEntry] = []
        self._installed = False

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    def install(self) -> int:
        """Schedule every fault event; returns the number installed.

        Must run before :meth:`runtime.run` drains the queue (events in
        the simulated past cannot be scheduled).  The network's loss
        sampler is reseeded from the schedule seed so loss draws — and
        therefore everything downstream — reproduce exactly.
        """
        if self._installed:
            raise RuntimeError("fault schedule already installed")
        self._installed = True
        self._runtime.network.reseed_loss(self._schedule.seed)
        for event in self._schedule.events:
            self._runtime.sim.schedule_at(event.at_ms, self._applier(event))
        obs.counter("faults.scheduled").inc(len(self._schedule.events))
        return len(self._schedule.events)

    def log_lines(self) -> List[str]:
        """The fault log as canonical JSON lines (byte-stable)."""
        return [entry.to_json() for entry in self.log]

    # -- event application -------------------------------------------------

    def _applier(self, event: FaultEvent):
        def apply() -> None:
            tracer = obs.tracer()
            # Blast radius resolves *before* application (a crashed
            # surrogate's identity is gone from system state afterwards).
            scope_ips, scope_asns = (
                self._fault_scope(event) if tracer else (set(), set())
            )
            outcome, detail = self._apply(event)
            self.log.append(
                FaultLogEntry(
                    at_ms=self._runtime.sim.now_ms,
                    kind=event.kind,
                    target=event.target,
                    outcome=outcome,
                    detail=detail,
                )
            )
            obs.counter("faults.injected").inc()
            obs.counter(f"faults.{event.kind}").inc()
            # ``kind`` would collide with the sink's own record-kind field.
            obs.event(
                "fault", level="debug", fault_kind=event.kind, target=event.target
            )
            if tracer:
                now = self._runtime.sim.now_ms
                span = tracer.begin(
                    "fault", now, kind=event.kind, target=event.target
                )
                span.end(
                    now,
                    outcome=outcome,
                    detail=detail,
                    disrupted=self._disrupted_traces(scope_ips, scope_asns),
                )

        return apply

    # -- trace linkage -----------------------------------------------------

    def _fault_scope(self, event: FaultEvent):
        """The (host ips, AS numbers) a fault directly touches."""
        runtime = self._runtime
        scope, _, value = event.target.partition(":")
        ips: set = set()
        asns: set = set()
        kind = event.kind
        if kind == "surrogate-crash":
            ips.add(runtime.system.surrogate(int(value)).ip)
        elif kind == "host-leave":
            ips.add(IPv4Address.from_string(value))
        elif kind in ("bootstrap-down", "bootstrap-up"):
            bootstraps = runtime.bootstrap_hosts
            index = int(value)
            if index < len(bootstraps):
                ips.add(bootstraps[index].ip)
        elif kind in ("as-down", "as-up"):
            asns.add(int(value))
        elif kind in ("loss-burst-start", "loss-burst-end") and scope != "net":
            asns.add(int(value))
        return ips, asns

    def _asn_of(self, ip: IPv4Address) -> Optional[int]:
        host = self._runtime.network.host(ip)
        return host.asn if host is not None else None

    def _disrupted_traces(self, ips: set, asns: set) -> List[str]:
        """Trace ids of in-flight flows inside the fault's blast radius.

        Pending joins and call setups plus active media sessions whose
        endpoints (or current relay) sit on a failed host or inside a
        failed AS — the causal link the analyzer uses to hang fault
        events onto the per-call timelines they disrupt.
        """
        runtime = self._runtime
        disrupted: List[str] = []
        seen: set = set()

        def touch(span, *endpoints) -> None:
            trace_id = getattr(span, "trace_id", None)
            if trace_id is None or trace_id in seen:
                return
            for ip in endpoints:
                if ip is None:
                    continue
                if ip in ips or (asns and self._asn_of(ip) in asns):
                    seen.add(trace_id)
                    disrupted.append(trace_id)
                    return

        for join in runtime.joins:
            if join.outcome == "pending":
                touch(join.trace, join.ip)
        for call in runtime.call_setups:
            if call.outcome == "pending":
                touch(call.trace, call.caller, call.callee, call.relay_ip)
        for media in runtime.media_sessions:
            if media.outcome == "active":
                touch(media.call_trace, media.caller, media.callee, media.relay_ip)
        return disrupted

    def _apply(self, event: FaultEvent):
        runtime = self._runtime
        network = runtime.network
        kind = event.kind
        scope, _, value = event.target.partition(":")

        if kind == "surrogate-crash":
            cluster_index = int(value)
            primary = runtime.system.surrogate(cluster_index)
            if not runtime.system.is_online(primary.ip):
                return "skipped", "surrogate already offline"
            promoted = runtime.fail_host(primary.ip)
            detail = f"crashed {primary.ip}"
            if promoted is not None:
                detail += f", promoted {promoted.ip}"
            return "applied", detail

        if kind == "host-leave":
            ip = IPv4Address.from_string(value)
            if not runtime.system.is_online(ip):
                return "skipped", "already offline"
            promoted = runtime.fail_host(ip)
            return "applied", f"promoted {promoted.ip}" if promoted is not None else ""

        if kind in ("bootstrap-down", "bootstrap-up"):
            index = int(value)
            bootstraps = runtime.bootstrap_hosts
            if index >= len(bootstraps):
                return "skipped", f"only {len(bootstraps)} bootstraps"
            ip = bootstraps[index].ip
            if kind == "bootstrap-down":
                network.set_host_down(ip)
            else:
                network.set_host_up(ip)
            return "applied", str(ip)

        if kind == "as-down":
            network.set_as_down(int(value))
            return "applied", ""
        if kind == "as-up":
            network.set_as_up(int(value))
            return "applied", ""

        if kind == "loss-burst-start":
            asn = None if scope == "net" else int(value)
            network.push_loss(event.value or 0.0, asn=asn)
            return "applied", f"rate={event.value}"
        if kind == "loss-burst-end":
            asn = None if scope == "net" else int(value)
            network.pop_loss(event.value or 0.0, asn=asn)
            return "applied", ""

        if kind == "background-loss":
            network.set_background_loss(event.value or 0.0)
            return "applied", f"rate={event.value}"

        if kind in ("shard-down", "shard-up"):
            if self._directory is None:
                return "skipped", "no sharded directory"
            shard = int(value)
            if shard >= self._directory.shard_count:
                return "skipped", f"only {self._directory.shard_count} shards"
            if kind == "shard-down":
                self._directory.set_shard_down(shard, runtime.sim.now_ms)
            else:
                self._directory.set_shard_up(shard, runtime.sim.now_ms)
            return "applied", ""

        return "skipped", f"unknown kind {kind!r}"
