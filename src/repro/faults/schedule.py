"""Compile a :class:`FaultScheduleConfig` into a concrete fault timeline.

Compilation resolves every stochastic choice — crash instants, which
cluster's surrogate dies, which hosts churn, which ASes fail — against
one scenario using seeded :func:`~repro.util.rng.derive_rng` streams,
producing an ordered tuple of :class:`FaultEvent`\\ s.  The timeline is
pure data: applying it is the injector's job, so the same schedule can
be replayed against many runtimes (or serialized for audit).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

from repro.faults.config import FaultScheduleConfig
from repro.util.rng import derive_rng

#: Event kinds, in the order ties at one instant are applied.
EVENT_KINDS = (
    "surrogate-crash",
    "host-leave",
    "bootstrap-down",
    "bootstrap-up",
    "as-down",
    "as-up",
    "loss-burst-start",
    "loss-burst-end",
    "background-loss",
    # Appended (never inserted): EVENT_KINDS order is the sort tie-break,
    # so extending at the end keeps existing schedules byte-stable.
    "shard-down",
    "shard-up",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, fully resolved to a concrete target."""

    at_ms: float
    kind: str
    #: "cluster:<idx>", "host:<ip>", "bootstrap:<idx>", "as:<asn>", "net"
    target: str
    #: Loss rate for loss events; unused otherwise.
    value: Optional[float] = None

    def sort_key(self) -> Tuple[float, int, str]:
        return (self.at_ms, EVENT_KINDS.index(self.kind), self.target)

    def to_json(self) -> str:
        """Canonical one-line JSON form (stable across processes)."""
        doc = {k: v for k, v in asdict(self).items() if v is not None}
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class FaultSchedule:
    """A compiled fault timeline, sorted by (time, kind, target)."""

    seed: int
    duration_ms: float
    events: Tuple[FaultEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def lines(self) -> List[str]:
        """Canonical serialization, one JSON line per event."""
        return [event.to_json() for event in self.events]


def _sample_times(rng, count: int, duration_ms: float) -> List[float]:
    """``count`` event instants, uniform over the run, rounded for
    stable serialization."""
    return sorted(round(float(t), 3) for t in rng.uniform(0.0, duration_ms, size=count))


def compile_schedule(
    config: FaultScheduleConfig, scenario
) -> FaultSchedule:
    """Expand a fault config against one scenario into a timeline.

    Stochastic components draw from independent seeded streams (one per
    fault family), so adding e.g. loss bursts never shifts which
    surrogates crash.
    """
    events: List[FaultEvent] = []
    duration = config.duration_ms
    clusters = scenario.clusters.all_clusters()
    matrices = scenario.matrices

    # Surrogate crashes: only multi-host clusters (a crash there forces
    # re-election; single-host clusters just go dark and are churn).
    crashable = [
        matrices.index_of[c.prefix] for c in clusters if len(c.hosts) >= 2
    ]
    if config.surrogate_crash_rate_per_min > 0 and crashable:
        rng = derive_rng(config.seed, "faults", "surrogate-crash")
        count = int(rng.poisson(config.surrogate_crash_rate_per_min * duration / 60_000.0))
        times = _sample_times(rng, count, duration)
        picks = rng.integers(0, len(crashable), size=count)
        for at, pick in zip(times, picks):
            events.append(
                FaultEvent(at_ms=at, kind="surrogate-crash", target=f"cluster:{crashable[int(pick)]}")
            )

    # Ongoing host churn + mass waves.
    hosts = scenario.population.hosts
    if config.host_churn_rate_per_min > 0 and hosts:
        rng = derive_rng(config.seed, "faults", "host-churn")
        count = int(rng.poisson(config.host_churn_rate_per_min * duration / 60_000.0))
        count = min(count, len(hosts))
        times = _sample_times(rng, count, duration)
        picks = rng.choice(len(hosts), size=count, replace=False)
        for at, pick in zip(times, sorted(int(p) for p in picks)):
            events.append(
                FaultEvent(at_ms=at, kind="host-leave", target=f"host:{hosts[pick].ip}")
            )
    for wave_index, wave in enumerate(config.churn_waves):
        if not hosts:
            break
        rng = derive_rng(config.seed, "faults", "churn-wave", str(wave_index))
        count = max(1, int(round(wave.fraction * len(hosts))))
        picks = rng.choice(len(hosts), size=min(count, len(hosts)), replace=False)
        for pick in sorted(int(p) for p in picks):
            events.append(
                FaultEvent(
                    at_ms=round(wave.at_ms, 3),
                    kind="host-leave",
                    target=f"host:{hosts[pick].ip}",
                )
            )

    # Bootstrap outage windows.
    for outage in config.bootstrap_outages:
        target = f"bootstrap:{outage.index}"
        events.append(FaultEvent(at_ms=round(outage.start_ms, 3), kind="bootstrap-down", target=target))
        events.append(
            FaultEvent(
                at_ms=round(outage.start_ms + outage.duration_ms, 3),
                kind="bootstrap-up",
                target=target,
            )
        )

    # AS failures: explicit windows plus sampled ones.
    all_asns = sorted({int(asn) for asn in matrices.asn_of})
    rng_as = derive_rng(config.seed, "faults", "as-outage")
    for outage in config.as_outages:
        asn = outage.asn
        if asn is None and all_asns:
            asn = all_asns[int(rng_as.integers(0, len(all_asns)))]
        if asn is None:
            continue
        target = f"as:{asn}"
        events.append(FaultEvent(at_ms=round(outage.start_ms, 3), kind="as-down", target=target))
        events.append(
            FaultEvent(
                at_ms=round(outage.start_ms + outage.duration_ms, 3),
                kind="as-up",
                target=target,
            )
        )
    if config.random_as_outages > 0 and all_asns:
        times = _sample_times(rng_as, config.random_as_outages, duration)
        picks = rng_as.integers(0, len(all_asns), size=config.random_as_outages)
        for at, pick in zip(times, picks):
            target = f"as:{all_asns[int(pick)]}"
            events.append(FaultEvent(at_ms=at, kind="as-down", target=target))
            events.append(
                FaultEvent(
                    at_ms=round(at + config.as_outage_duration_ms, 3),
                    kind="as-up",
                    target=target,
                )
            )

    # Loss: windowed bursts + uniform background.
    for burst in config.loss_bursts:
        target = "net" if burst.asn is None else f"as:{burst.asn}"
        events.append(
            FaultEvent(
                at_ms=round(burst.start_ms, 3),
                kind="loss-burst-start",
                target=target,
                value=burst.loss_rate,
            )
        )
        events.append(
            FaultEvent(
                at_ms=round(burst.start_ms + burst.duration_ms, 3),
                kind="loss-burst-end",
                target=target,
                value=burst.loss_rate,
            )
        )
    if config.message_loss_rate > 0:
        events.append(
            FaultEvent(
                at_ms=0.0,
                kind="background-loss",
                target="net",
                value=config.message_loss_rate,
            )
        )

    # Directory shard failure windows (live control plane runs).
    for outage in config.shard_outages:
        target = f"shard:{outage.shard}"
        events.append(FaultEvent(at_ms=round(outage.start_ms, 3), kind="shard-down", target=target))
        events.append(
            FaultEvent(
                at_ms=round(outage.start_ms + outage.duration_ms, 3),
                kind="shard-up",
                target=target,
            )
        )

    events.sort(key=FaultEvent.sort_key)
    return FaultSchedule(seed=config.seed, duration_ms=duration, events=tuple(events))
