"""Declarative fault schedules (what goes wrong, when, and how badly).

A :class:`FaultScheduleConfig` describes the *stochastic shape* of a
chaos experiment — crash rates, churn waves, outage windows, loss
bursts — plus the seed that makes it reproducible.  It never touches a
live system itself: :func:`repro.faults.schedule.compile_schedule`
expands it against a concrete scenario into a deterministic timeline of
:class:`~repro.faults.schedule.FaultEvent`\\ s, and
:class:`~repro.faults.injector.FaultInjector` applies that timeline to
a running :class:`~repro.core.runtime.ASAPRuntime`.

The same config + the same scenario always compile to byte-identical
schedules, so chaos results (fault logs, failover histograms) reproduce
exactly across invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True, kw_only=True)
class ChurnWave:
    """A mass-departure event: a fraction of online hosts leaves at once."""

    at_ms: float
    fraction: float

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ConfigurationError("churn wave at_ms must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError("churn wave fraction must be in (0, 1]")


@dataclass(frozen=True, kw_only=True)
class BootstrapOutage:
    """One bootstrap server is unreachable during a time window."""

    index: int
    start_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("bootstrap index must be >= 0")
        if self.start_ms < 0 or self.duration_ms <= 0:
            raise ConfigurationError("outage window must be positive")


@dataclass(frozen=True, kw_only=True)
class ASOutage:
    """A whole AS fails for a window (None = let the compiler pick one)."""

    asn: Optional[int] = None
    start_ms: float = 0.0
    duration_ms: float = 5_000.0

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.duration_ms <= 0:
            raise ConfigurationError("AS outage window must be positive")


@dataclass(frozen=True, kw_only=True)
class LossBurst:
    """Elevated message loss during a window (AS-scoped when asn set)."""

    start_ms: float
    duration_ms: float
    loss_rate: float
    asn: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.duration_ms <= 0:
            raise ConfigurationError("loss burst window must be positive")
        if not 0.0 < self.loss_rate <= 1.0:
            raise ConfigurationError("loss burst rate must be in (0, 1]")


@dataclass(frozen=True, kw_only=True)
class ShardOutage:
    """One directory shard is down (process crash) during a window.

    Only meaningful when the run drives a sharded control plane (the
    churn soak); the injector skips it otherwise.  Recovery restarts
    the shard empty — soft state re-registers.
    """

    shard: int
    start_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigurationError("shard index must be >= 0")
        if self.start_ms < 0 or self.duration_ms <= 0:
            raise ConfigurationError("shard outage window must be positive")


@dataclass(frozen=True, kw_only=True)
class FaultScheduleConfig:
    """Full description of one fault-injection experiment.

    Rates are expressed per simulated minute so schedules scale with
    ``duration_ms``; event *times* and *targets* are sampled from
    ``derive_rng(seed, ...)`` streams at compile time.
    """

    seed: int = 0
    duration_ms: float = 60_000.0
    #: Expected surrogate crashes per simulated minute (primaries of
    #: multi-host clusters; the crash also takes the host offline).
    surrogate_crash_rate_per_min: float = 0.0
    #: Expected ordinary host departures per simulated minute.
    host_churn_rate_per_min: float = 0.0
    #: Mass departures at fixed instants.
    churn_waves: Tuple[ChurnWave, ...] = ()
    #: Explicit bootstrap unreachability windows.
    bootstrap_outages: Tuple[BootstrapOutage, ...] = ()
    #: Explicit AS failure windows (asn=None entries get one sampled).
    as_outages: Tuple[ASOutage, ...] = ()
    #: Additionally sample this many AS failures at random times.
    random_as_outages: int = 0
    #: Window length for sampled AS failures.
    as_outage_duration_ms: float = 5_000.0
    #: Time-windowed elevated loss.
    loss_bursts: Tuple[LossBurst, ...] = ()
    #: Uniform background message-loss probability for the whole run.
    message_loss_rate: float = 0.0
    #: Directory shard failure windows (soak runs; no-ops elsewhere).
    shard_outages: Tuple[ShardOutage, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ConfigurationError("duration_ms must be positive")
        if self.surrogate_crash_rate_per_min < 0:
            raise ConfigurationError("surrogate_crash_rate_per_min must be >= 0")
        if self.host_churn_rate_per_min < 0:
            raise ConfigurationError("host_churn_rate_per_min must be >= 0")
        if self.random_as_outages < 0:
            raise ConfigurationError("random_as_outages must be >= 0")
        if self.as_outage_duration_ms <= 0:
            raise ConfigurationError("as_outage_duration_ms must be positive")
        if not 0.0 <= self.message_loss_rate < 1.0:
            raise ConfigurationError("message_loss_rate must be in [0, 1)")

    @property
    def is_zero(self) -> bool:
        """True when this schedule injects nothing at all."""
        return (
            self.surrogate_crash_rate_per_min == 0.0
            and self.host_churn_rate_per_min == 0.0
            and not self.churn_waves
            and not self.bootstrap_outages
            and not self.as_outages
            and self.random_as_outages == 0
            and not self.loss_bursts
            and self.message_loss_rate == 0.0
            and not self.shard_outages
        )

    @classmethod
    def zeroed(cls, duration_ms: float = 60_000.0, seed: int = 0) -> "FaultScheduleConfig":
        """A schedule that injects no faults (the parity baseline)."""
        return cls(seed=seed, duration_ms=duration_ms)

    def scaled(self, intensity: float) -> "FaultScheduleConfig":
        """Scale every stochastic fault rate by ``intensity``.

        Explicit windows (outages, bursts, waves) are kept as-is; the
        chaos sweep varies the random components around them.
        """
        if intensity < 0:
            raise ConfigurationError("intensity must be >= 0")
        return replace(
            self,
            surrogate_crash_rate_per_min=self.surrogate_crash_rate_per_min * intensity,
            host_churn_rate_per_min=self.host_churn_rate_per_min * intensity,
            random_as_outages=int(round(self.random_as_outages * intensity)),
            message_loss_rate=min(self.message_loss_rate * intensity, 0.99),
        )
