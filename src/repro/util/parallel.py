"""Multiprocess fan-out helpers for the evaluation substrate.

The heavy substrate computations — per-destination policy-tree walks in
:func:`repro.measurement.matrix.compute_delegate_matrices` and the
per-surrogate valley-free BFS in close-cluster-set construction — are
embarrassingly parallel: each unit of work is independent given the
shared read-only world (topology, AS graph, latency model).

On POSIX we exploit that with ``fork``-start worker pools whose children
inherit the world by copy-on-write memory instead of pickling it; the
parent publishes the shared state in a module-level slot immediately
before forking and clears it afterwards.  Platforms without ``fork``
(and ``workers=1``) take the serial path, which is always the reference
implementation — parallel output is asserted bit-for-bit identical in
the test suite.

Worker-count resolution order (most to least specific):

1. an explicit integer (``workers=4``);
2. ``workers <= 0`` → all CPUs (``os.cpu_count()``);
3. ``workers=None`` → the ``REPRO_WORKERS`` environment variable when
   set, else serial.
"""

from __future__ import annotations

import mmap
import multiprocessing
import os
import time
from typing import Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")

#: Environment override consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker-count setting to a concrete positive integer.

    ``None`` defers to ``$REPRO_WORKERS`` (absent/empty → 1, i.e. serial);
    zero or negative means "all CPUs".
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(f"${WORKERS_ENV} must be an integer, got {env!r}") from None
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def fork_available() -> bool:
    """Whether fork-start process pools exist on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def chunked(items: Sequence[T], chunk_count: int) -> List[List[T]]:
    """Split a sequence into up to ``chunk_count`` contiguous chunks of
    near-equal size (empty chunks are dropped)."""
    total = len(items)
    chunk_count = max(1, min(chunk_count, total))
    base, extra = divmod(total, chunk_count)
    chunks: List[List[T]] = []
    start = 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def plan_chunks(costs: Sequence[float], chunk_count: int) -> List[List[int]]:
    """Partition item indices into contiguous chunks of near-equal *cost*.

    ``chunked`` balances chunk length; this balances estimated work, so
    a pool where item costs vary (e.g. destination ASes with very
    different column counts) keeps every worker busy.  Boundaries sit
    where the cumulative cost crosses each equal share — deterministic,
    order-preserving, no empty chunks.
    """
    total_items = len(costs)
    if total_items == 0:
        return []
    chunk_count = max(1, min(chunk_count, total_items))
    cumulative = np.cumsum(np.maximum(np.asarray(costs, dtype=float), 0.0))
    total = float(cumulative[-1])
    if total <= 0.0:
        return chunked(list(range(total_items)), chunk_count)
    chunks: List[List[int]] = []
    start = 0
    for index in range(chunk_count):
        if start >= total_items:
            break
        if index == chunk_count - 1:
            end = total_items
        else:
            share = total * (index + 1) / chunk_count
            end = int(np.searchsorted(cumulative, share, side="left")) + 1
            end = max(end, start + 1)
            # Leave at least one item per remaining chunk.
            end = min(end, total_items - (chunk_count - index - 1))
            end = max(end, start + 1)
        chunks.append(list(range(start, end)))
        start = end
    return chunks


def shared_ndarray(shape: Tuple[int, ...], dtype, fill=None) -> np.ndarray:
    """A numpy array over anonymous shared memory (``MAP_SHARED``).

    Fork children inherit the mapping, so writes made in pool workers
    are visible to the parent without pickling results back — the
    substrate's zero-copy output channel for parallel matrix assembly.
    The mmap stays alive through the returned array's ``.base``.
    """
    dtype = np.dtype(dtype)
    length = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    buffer = mmap.mmap(-1, max(1, length))
    array = np.frombuffer(buffer, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)))
    array = array.reshape(shape)
    if fill is not None:
        array[...] = fill
    return array


def run_forked(worker, chunks: Iterable[Sequence], processes: int) -> List:
    """``pool.map`` over chunks with a fork-start pool.

    The caller is responsible for having published any shared state in a
    module-level slot that ``worker`` reads (fork children inherit it).

    With observability active (:mod:`repro.obs`), every pool task runs
    against a fresh child-side metrics registry whose snapshot is merged
    back into the parent registry afterwards — counters incremented in
    workers sum exactly once — and per-chunk wall times land in the
    ``parallel.chunk`` histogram.  With observability off this path is
    untouched: the bare worker goes straight into ``pool.map``.
    """
    from repro import obs

    context = multiprocessing.get_context("fork")
    if not obs.enabled():
        with context.Pool(processes=processes) as pool:
            return pool.map(worker, list(chunks))

    global _FORKED_WORKER
    chunk_list = list(chunks)
    _FORKED_WORKER = worker
    try:
        with obs.span("parallel.run_forked", processes=processes, chunks=len(chunk_list)):
            with context.Pool(processes=processes) as pool:
                outcomes = pool.map(_observed_worker, chunk_list)
    finally:
        _FORKED_WORKER = None
    results = []
    for result, snapshot in outcomes:
        obs.merge_child_snapshot(snapshot)
        results.append(result)
    return results


#: The user worker observed pool tasks wrap (inherited by fork children).
_FORKED_WORKER = None


def _observed_worker(chunk):
    """Pool task wrapper: child-local metrics plus per-chunk timing."""
    from repro import obs

    obs.begin_forked_child()
    started = time.perf_counter()
    result = _FORKED_WORKER(chunk)
    obs.histogram("parallel.chunk").observe(time.perf_counter() - started)
    obs.counter("parallel.chunks").inc()
    obs.counter("parallel.chunk_items").inc(len(chunk))
    return result, obs.collect_forked_child()
