"""Shared utilities: deterministic RNG plumbing and distribution helpers."""

from repro.util.rng import derive_rng, spawn_rngs
from repro.util.stats import (
    ccdf_points,
    cdf_points,
    percentile,
    summarize,
    DistributionSummary,
)

__all__ = [
    "DistributionSummary",
    "ccdf_points",
    "cdf_points",
    "derive_rng",
    "percentile",
    "spawn_rngs",
    "summarize",
]
