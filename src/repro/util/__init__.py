"""Shared utilities: deterministic RNG plumbing, distribution helpers,
and multiprocess fan-out support."""

from repro.util.parallel import (
    chunked,
    fork_available,
    plan_chunks,
    resolve_workers,
    shared_ndarray,
)
from repro.util.rng import derive_rng, spawn_rngs
from repro.util.stats import (
    ccdf_points,
    cdf_points,
    percentile,
    summarize,
    DistributionSummary,
)

__all__ = [
    "DistributionSummary",
    "ccdf_points",
    "cdf_points",
    "chunked",
    "derive_rng",
    "fork_available",
    "percentile",
    "plan_chunks",
    "resolve_workers",
    "shared_ndarray",
    "spawn_rngs",
    "summarize",
]
