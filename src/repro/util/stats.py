"""Distribution helpers used by the evaluation harness and benchmarks.

The paper reports results almost exclusively as CDFs/CCDFs and scatter
series; these helpers turn raw sample arrays into the point series the
benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-plus summary of a sample, for compact bench reporting."""

    count: int
    minimum: float
    p25: float
    median: float
    p75: float
    p90: float
    p99: float
    maximum: float
    mean: float

    def row(self) -> str:
        """Render as a fixed-width report row."""
        return (
            f"n={self.count:>7d}  min={self.minimum:>9.2f}  p25={self.p25:>9.2f}  "
            f"med={self.median:>9.2f}  p75={self.p75:>9.2f}  p90={self.p90:>9.2f}  "
            f"p99={self.p99:>9.2f}  max={self.maximum:>9.2f}  mean={self.mean:>9.2f}"
        )


def summarize(samples: Sequence[float]) -> DistributionSummary:
    """Compute a :class:`DistributionSummary`; raises on empty input."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return DistributionSummary(
        count=int(arr.size),
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
    )


def percentile(samples: Sequence[float], q: float) -> float:
    """Percentile q in [0, 100] of the sample."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    return float(np.percentile(arr, q))


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, P[X <= value]) points, sorted by value."""
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        return []
    n = arr.size
    return [(float(v), (i + 1) / n) for i, v in enumerate(arr)]


def ccdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CCDF as (value, P[X > value]) points, sorted by value."""
    return [(v, 1.0 - p) for v, p in cdf_points(samples)]


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """P[X < threshold] over the sample; 0.0 for empty input."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr < threshold))


def fraction_above(samples: Sequence[float], threshold: float) -> float:
    """P[X > threshold] over the sample; 0.0 for empty input."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr > threshold))
