"""Deterministic random-number plumbing.

Every stochastic component in the library (topology generation, latency
jitter, workload sampling, protocol probing) takes an explicit
:class:`numpy.random.Generator`.  These helpers derive independent child
generators from a parent seed so experiments are reproducible end-to-end
and sub-systems cannot perturb each other's streams.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def derive_rng(seed: SeedLike, *labels: str) -> np.random.Generator:
    """Return a Generator derived deterministically from ``seed`` + labels.

    ``seed`` may be an int, an existing Generator (used to draw a child
    seed), or None (non-deterministic).  Labels namespace the stream so two
    subsystems sharing one experiment seed get independent sequences::

        rng_topo = derive_rng(42, "topology")
        rng_load = derive_rng(42, "workload")
    """
    if isinstance(seed, np.random.Generator):
        root = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        return np.random.default_rng()
    else:
        root = int(seed)
    mixed = np.random.SeedSequence([root] + [_label_to_int(lbl) for lbl in labels])
    return np.random.default_rng(mixed)


def spawn_rngs(seed: SeedLike, count: int, *labels: str) -> List[np.random.Generator]:
    """Derive ``count`` mutually independent generators."""
    parent = derive_rng(seed, *labels)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def _label_to_int(label: str) -> int:
    value = 0
    for ch in label:
        value = (value * 131 + ord(ch)) % (2**31 - 1)
    return value
