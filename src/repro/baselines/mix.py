"""MIX — dedicated fleet plus random probes (paper's hybrid baseline).

40 dedicated nodes and 120 random probes per session by default, matching
Section 7.1's "MIX probes 160 nodes, including 40 dedicated nodes and
120 randomly probed nodes".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod
from repro.baselines.dedi import DEDIMethod
from repro.baselines.rand import RANDMethod
from repro.bgp.asgraph import ASGraph


class MIXMethod(RelayMethod):
    """Hybrid dedicated + random selection."""

    name = "MIX"

    def __init__(
        self,
        graph: ASGraph,
        config: Optional[BaselineConfig] = None,
    ) -> None:
        super().__init__(config)
        config = self._config
        self._dedi = DEDIMethod(graph, config, fleet_size=config.mix_dedicated)
        self._rand = RANDMethod(config, probes=config.mix_random)
        # Share the RNG namespace with MIX so results differ from RAND's.
        self._rand.name = "MIX"

    def evaluate_sessions(
        self,
        world,
        sessions: Sequence,
        *,
        session_ids: Optional[Sequence[int]] = None,
        columns=None,
    ) -> List[MethodResult]:
        """Batch evaluation: both component batches, combined per session."""
        dedi = self._dedi.evaluate_sessions(world, sessions, session_ids=session_ids)
        rand = self._rand.evaluate_sessions(world, sessions, session_ids=session_ids)
        return [self._combine(d, r) for d, r in zip(dedi, rand)]

    def _combine(self, dedi: MethodResult, rand: MethodResult) -> MethodResult:
        bests = [r for r in (dedi.best_rtt_ms, rand.best_rtt_ms) if r is not None]
        return MethodResult(
            method=self.name,
            quality_paths=dedi.quality_paths + rand.quality_paths,
            best_rtt_ms=min(bests) if bests else None,
            messages=dedi.messages + rand.messages,
            probed_nodes=dedi.probed_nodes + rand.probed_nodes,
        )
