"""MIX — dedicated fleet plus random probes (paper's hybrid baseline).

40 dedicated nodes and 120 random probes per session by default, matching
Section 7.1's "MIX probes 160 nodes, including 40 dedicated nodes and
120 randomly probed nodes".
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod
from repro.baselines.dedi import DEDIMethod
from repro.baselines.rand import RANDMethod
from repro.bgp.asgraph import ASGraph
from repro.measurement.matrix import DelegateMatrices


class MIXMethod(RelayMethod):
    """Hybrid dedicated + random selection."""

    name = "MIX"

    def __init__(
        self,
        matrices: DelegateMatrices,
        graph: ASGraph,
        config: Optional[BaselineConfig] = None,
    ) -> None:
        super().__init__(matrices, config)
        config = self._config
        self._dedi = DEDIMethod(matrices, graph, config, fleet_size=config.mix_dedicated)
        self._rand = RANDMethod(matrices, config, probes=config.mix_random)
        # Share the RNG namespace with MIX so results differ from RAND's.
        self._rand.name = "MIX"

    def evaluate_sessions(
        self,
        pairs: Sequence[Tuple[int, int]],
        session_ids: Optional[Sequence[int]] = None,
    ) -> List[MethodResult]:
        """Batch evaluation: both component batches, combined per session."""
        dedi = self._dedi.evaluate_sessions(pairs, session_ids)
        rand = self._rand.evaluate_sessions(pairs, session_ids)
        return [self._combine(d, r) for d, r in zip(dedi, rand)]

    def _combine(self, dedi: MethodResult, rand: MethodResult) -> MethodResult:
        bests = [r for r in (dedi.best_rtt_ms, rand.best_rtt_ms) if r is not None]
        return MethodResult(
            method=self.name,
            quality_paths=dedi.quality_paths + rand.quality_paths,
            best_rtt_ms=min(bests) if bests else None,
            messages=dedi.messages + rand.messages,
            probed_nodes=dedi.probed_nodes + rand.probed_nodes,
        )
