"""OPT — the offline optimal relay selection (paper Section 7.1).

"OPT always chooses relay nodes that give the shortest overlay routing
latency.  This is an offline method with all latency data on hand
through one-hop and two-hop relay paths iterations."

One-hop optimum is a vectorized min over all clusters; the two-hop
optimum is a min-plus product over the matrix, evaluated lazily per
session (O(N²), numpy-vectorized).

Worlds without dense arrays (streamed views) are evaluated over
``iter_column_blocks``: session rows/columns are collected in one sweep
and the min-plus product folds block by block.  Every elementwise
expression keeps the dense path's operand order, and mins/integer sums
over a partition equal mins/sums over the whole, so the streamed results
are bit-identical to the dense ones.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod, session_batch

#: Sessions scored per streamed sweep — bounds the (sessions × clusters)
#: row/column buffers regardless of batch size.
STREAM_SESSION_BATCH = 128


class OPTMethod(RelayMethod):
    """Exhaustive offline optimum over one- and two-hop relay paths."""

    name = "OPT"

    def __init__(
        self,
        config: Optional[BaselineConfig] = None,
        include_two_hop: bool = True,
    ) -> None:
        super().__init__(config)
        self._include_two_hop = include_two_hop

    def best_one_hop(self, world, a: int, b: int) -> Tuple[Optional[int], Optional[float]]:
        """(relay cluster, RTT) of the optimal one-hop relay path."""
        if hasattr(world, "rtt_ms"):
            rtt = world.rtt_ms
            path = rtt[a, :] + rtt[:, b] + self._config.relay_delay_rtt_ms
            path = path.copy()
        else:
            rows, cols = _session_rows_cols(world, np.array([a]), np.array([b]))
            path = rows[0] + cols[:, 0] + self._config.relay_delay_rtt_ms
        path[a] = np.inf  # relaying through an endpoint's own cluster
        path[b] = np.inf  # is the direct path, not an overlay
        idx = int(np.argmin(path))
        value = float(path[idx])
        if not np.isfinite(value):
            return None, None
        return idx, value

    def best_two_hop(self, world, a: int, b: int) -> Optional[float]:
        """RTT of the optimal two-hop relay path (min-plus product).

        Both endpoint clusters are masked out of the intermediate-hop
        positions, mirroring :meth:`best_one_hop`: a path "through" an
        endpoint's own cluster is really a one-hop or direct path (e.g.
        ``rtt[a, j] + rtt[j, b] + rtt[b, b]``), not a two-hop overlay.
        """
        if hasattr(world, "rtt_ms"):
            rtt = world.rtt_ms
            second_leg = rtt[:, b].copy()
            second_leg[[a, b]] = np.inf  # r2 may not be an endpoint cluster
            # w[i] = min_{j ∉ {a,b}} ( rtt[i, j] + rtt[j, b] )
            w = np.min(rtt + second_leg[np.newaxis, :], axis=1)
            first_leg = rtt[a, :].copy()
        else:
            rows, cols = _session_rows_cols(world, np.array([a]), np.array([b]))
            second_leg = cols[:, 0].copy()
            second_leg[[a, b]] = np.inf
            w = _min_plus_fold(world, second_leg[:, None])[:, 0]
            first_leg = rows[0].copy()
        first_leg[[a, b]] = np.inf  # r1 may not be an endpoint cluster
        path = first_leg + w + 2.0 * self._config.relay_delay_rtt_ms
        best = float(np.min(path))
        return best if np.isfinite(best) else None

    def evaluate_sessions(
        self,
        world,
        sessions: Sequence,
        *,
        session_ids: Optional[Sequence[int]] = None,
        columns=None,
    ) -> List[MethodResult]:
        """Vectorized batch evaluation: one-hop minima and quality counts
        for all sessions in a few numpy operations (the two-hop min-plus
        product stays per-session — it is already an O(N²) numpy kernel)."""
        pairs, _ = session_batch(sessions, session_ids)
        if len(pairs) == 0:
            return []
        if hasattr(world, "rtt_ms"):
            return self._evaluate_dense(world, pairs)
        results: List[MethodResult] = []
        for start in range(0, len(pairs), STREAM_SESSION_BATCH):
            results.extend(
                self._evaluate_streamed(world, pairs[start : start + STREAM_SESSION_BATCH])
            )
        return results

    def _evaluate_dense(self, world, pairs: Sequence[Tuple[int, int]]) -> List[MethodResult]:
        a_arr, b_arr = self._pair_arrays(pairs)
        rtt = world.rtt_ms
        rows = np.arange(len(pairs))
        path = rtt[a_arr, :] + rtt[:, b_arr].T + self._config.relay_delay_rtt_ms
        path[rows, a_arr] = np.inf
        path[rows, b_arr] = np.inf
        one_hop_best = np.min(path, axis=1)
        finite = np.isfinite(path)
        quality_mask = finite & (path < self._config.lat_threshold_ms)
        quality = quality_mask.astype(np.int64) @ world.sizes

        results: List[MethodResult] = []
        for k in range(len(pairs)):
            candidates = []
            if np.isfinite(one_hop_best[k]):
                candidates.append(float(one_hop_best[k]))
            if self._include_two_hop:
                two_hop = self.best_two_hop(world, int(a_arr[k]), int(b_arr[k]))
                if two_hop is not None:
                    candidates.append(two_hop)
            results.append(
                MethodResult(
                    method=self.name,
                    quality_paths=int(quality[k]),
                    best_rtt_ms=min(candidates) if candidates else None,
                    messages=0,
                    probed_nodes=0,
                )
            )
        return results

    def _evaluate_streamed(
        self, world, pairs: Sequence[Tuple[int, int]]
    ) -> List[MethodResult]:
        """Score one sub-batch over a streamed view without dense arrays.

        Sweep 1 collects each session's caller row and callee column;
        the one-hop scoring then runs the dense expressions on the
        (sessions × clusters) buffers.  Sweep 2 folds the two-hop
        min-plus product for all sessions of the sub-batch at once.
        """
        a_arr, b_arr = self._pair_arrays(pairs)
        rows_mat, cols_mat = _session_rows_cols(world, a_arr, b_arr)
        rows = np.arange(len(pairs))
        path = rows_mat + cols_mat.T + self._config.relay_delay_rtt_ms
        path[rows, a_arr] = np.inf
        path[rows, b_arr] = np.inf
        one_hop_best = np.min(path, axis=1)
        finite = np.isfinite(path)
        quality_mask = finite & (path < self._config.lat_threshold_ms)
        quality = quality_mask.astype(np.int64) @ world.sizes

        two_hop_best: Optional[np.ndarray] = None
        if self._include_two_hop:
            second_legs = cols_mat.copy()
            for k in range(len(pairs)):
                second_legs[[int(a_arr[k]), int(b_arr[k])], k] = np.inf
            w_mat = _min_plus_fold(world, second_legs)
            first_legs = rows_mat.copy()
            for k in range(len(pairs)):
                first_legs[k, [int(a_arr[k]), int(b_arr[k])]] = np.inf
            paths = first_legs + w_mat.T + 2.0 * self._config.relay_delay_rtt_ms
            two_hop_best = np.min(paths, axis=1)

        results: List[MethodResult] = []
        for k in range(len(pairs)):
            candidates = []
            if np.isfinite(one_hop_best[k]):
                candidates.append(float(one_hop_best[k]))
            if two_hop_best is not None and np.isfinite(two_hop_best[k]):
                candidates.append(float(two_hop_best[k]))
            results.append(
                MethodResult(
                    method=self.name,
                    quality_paths=int(quality[k]),
                    best_rtt_ms=min(candidates) if candidates else None,
                    messages=0,
                    probed_nodes=0,
                )
            )
        return results


def _session_rows_cols(
    world, a_arr: np.ndarray, b_arr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Collect ``rtt[a_k, :]`` rows and ``rtt[:, b_k]`` columns of a
    session batch in one pass over the view's column blocks."""
    n = world.count
    rows_mat = np.empty((len(a_arr), n), dtype=np.float64)
    cols_mat = np.empty((n, len(b_arr)), dtype=np.float64)
    wanted: dict = {}
    for k, b in enumerate(b_arr):
        wanted.setdefault(int(b), []).append(k)
    for cols, rtt_block, _, _ in world.iter_column_blocks():
        rows_mat[:, cols] = rtt_block[a_arr, :]
        base = int(cols[0])
        for j in cols:
            for k in wanted.get(int(j), ()):
                cols_mat[:, k] = rtt_block[:, int(j) - base]
    return rows_mat, cols_mat


def _min_plus_fold(world, second_legs: np.ndarray) -> np.ndarray:
    """``w[i, k] = min_j ( rtt[i, j] + second_legs[j, k] )`` folded block
    by block — the dense ``np.min(rtt + leg[None, :], axis=1)`` with the
    min taken over column partitions (exact: min is order-free)."""
    n, batch = second_legs.shape
    w = np.full((n, batch), np.inf, dtype=np.float64)
    for cols, rtt_block, _, _ in world.iter_column_blocks():
        for k in range(batch):
            contrib = rtt_block + second_legs[cols, k][None, :]
            np.minimum(w[:, k], np.min(contrib, axis=1), out=w[:, k])
    return w
