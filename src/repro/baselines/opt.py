"""OPT — the offline optimal relay selection (paper Section 7.1).

"OPT always chooses relay nodes that give the shortest overlay routing
latency.  This is an offline method with all latency data on hand
through one-hop and two-hop relay paths iterations."

One-hop optimum is a vectorized min over all clusters; the two-hop
optimum is a min-plus product over the matrix, evaluated lazily per
session (O(N²), numpy-vectorized).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod
from repro.measurement.matrix import DelegateMatrices


class OPTMethod(RelayMethod):
    """Exhaustive offline optimum over one- and two-hop relay paths."""

    name = "OPT"

    def __init__(
        self,
        matrices: DelegateMatrices,
        config: Optional[BaselineConfig] = None,
        include_two_hop: bool = True,
    ) -> None:
        super().__init__(matrices, config)
        self._include_two_hop = include_two_hop

    def best_one_hop(self, a: int, b: int) -> Tuple[Optional[int], Optional[float]]:
        """(relay cluster, RTT) of the optimal one-hop relay path."""
        rtt = self._matrices.rtt_ms
        path = rtt[a, :] + rtt[:, b] + self._config.relay_delay_rtt_ms
        path = path.copy()
        path[a] = np.inf  # relaying through an endpoint's own cluster
        path[b] = np.inf  # is the direct path, not an overlay
        idx = int(np.argmin(path))
        value = float(path[idx])
        if not np.isfinite(value):
            return None, None
        return idx, value

    def best_two_hop(self, a: int, b: int) -> Optional[float]:
        """RTT of the optimal two-hop relay path (min-plus product).

        Both endpoint clusters are masked out of the intermediate-hop
        positions, mirroring :meth:`best_one_hop`: a path "through" an
        endpoint's own cluster is really a one-hop or direct path (e.g.
        ``rtt[a, j] + rtt[j, b] + rtt[b, b]``), not a two-hop overlay.
        """
        rtt = self._matrices.rtt_ms
        second_leg = rtt[:, b].copy()
        second_leg[[a, b]] = np.inf  # r2 may not be an endpoint cluster
        # w[i] = min_{j ∉ {a,b}} ( rtt[i, j] + rtt[j, b] )
        w = np.min(rtt + second_leg[np.newaxis, :], axis=1)
        first_leg = rtt[a, :].copy()
        first_leg[[a, b]] = np.inf  # r1 may not be an endpoint cluster
        path = first_leg + w + 2.0 * self._config.relay_delay_rtt_ms
        best = float(np.min(path))
        return best if np.isfinite(best) else None

    def evaluate_sessions(
        self,
        pairs: Sequence[Tuple[int, int]],
        session_ids: Optional[Sequence[int]] = None,
    ) -> List[MethodResult]:
        """Vectorized batch evaluation: one-hop minima and quality counts
        for all sessions in a few numpy operations (the two-hop min-plus
        product stays per-session — it is already an O(N²) numpy kernel)."""
        if len(pairs) == 0:
            return []
        a_arr, b_arr = self._pair_arrays(pairs)
        rtt = self._matrices.rtt_ms
        rows = np.arange(len(pairs))
        path = rtt[a_arr, :] + rtt[:, b_arr].T + self._config.relay_delay_rtt_ms
        path[rows, a_arr] = np.inf
        path[rows, b_arr] = np.inf
        one_hop_best = np.min(path, axis=1)
        finite = np.isfinite(path)
        quality_mask = finite & (path < self._config.lat_threshold_ms)
        quality = quality_mask.astype(np.int64) @ self._matrices.sizes

        results: List[MethodResult] = []
        for k in range(len(pairs)):
            candidates = []
            if np.isfinite(one_hop_best[k]):
                candidates.append(float(one_hop_best[k]))
            if self._include_two_hop:
                two_hop = self.best_two_hop(int(a_arr[k]), int(b_arr[k]))
                if two_hop is not None:
                    candidates.append(two_hop)
            results.append(
                MethodResult(
                    method=self.name,
                    quality_paths=int(quality[k]),
                    best_rtt_ms=min(candidates) if candidates else None,
                    messages=0,
                    probed_nodes=0,
                )
            )
        return results
