"""RAND — SOSR-like random relay probing.

Each session probes a fixed number of peers drawn uniformly from the
online population (per-session deterministic RNG).  SOSR showed random
one-hop intermediaries recover many *failures*; for VoIP latency the
random draw rarely lands in the sweet spot, and the probe budget is pure
per-session overhead.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod
from repro.measurement.matrix import DelegateMatrices


class RANDMethod(RelayMethod):
    """Random-probing selection (paper's SOSR-like baseline)."""

    name = "RAND"

    def __init__(
        self,
        matrices: DelegateMatrices,
        config: BaselineConfig = BaselineConfig(),
        probes: int = None,
    ) -> None:
        super().__init__(matrices, config)
        self._probes = config.random_probes if probes is None else probes
        # Node draws are weighted by cluster occupancy: probing a random
        # *peer* lands in a cluster with probability ∝ its population.
        sizes = matrices.sizes.astype(float)
        total = sizes.sum()
        self._weights = sizes / total if total > 0 else None

    def evaluate_session(self, a: int, b: int, session_id: int = 0) -> MethodResult:
        rng = self._session_rng(session_id)
        n = self._matrices.count
        if self._weights is None or n == 0 or self._probes == 0:
            return MethodResult(self.name, 0, None, 0, 0)
        draws = rng.choice(n, size=self._probes, replace=True, p=self._weights)
        candidates = [int(c) for c in draws if c != a and c != b]
        quality, best = self._score_probes(a, b, candidates)
        return MethodResult(
            method=self.name,
            quality_paths=quality,
            best_rtt_ms=best,
            messages=2 * len(candidates),
            probed_nodes=len(candidates),
        )
