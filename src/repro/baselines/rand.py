"""RAND — SOSR-like random relay probing.

Each session probes a fixed number of peers drawn uniformly from the
online population (per-session deterministic RNG).  SOSR showed random
one-hop intermediaries recover many *failures*; for VoIP latency the
random draw rarely lands in the sweet spot, and the probe budget is pure
per-session overhead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod, session_batch


class RANDMethod(RelayMethod):
    """Random-probing selection (paper's SOSR-like baseline)."""

    name = "RAND"

    def __init__(
        self,
        config: Optional[BaselineConfig] = None,
        probes: Optional[int] = None,
    ) -> None:
        super().__init__(config)
        self._probes = self._config.random_probes if probes is None else probes

    def evaluate_sessions(
        self,
        world,
        sessions: Sequence,
        *,
        session_ids: Optional[Sequence[int]] = None,
        columns=None,
    ) -> List[MethodResult]:
        """Vectorized batch evaluation.

        The per-session RNG draws are kept in a (cheap) Python loop so
        each session's probe set matches :meth:`evaluate_session` draw
        for draw; all scoring is then two gather operations.
        """
        pairs, ids = session_batch(sessions, session_ids)
        if len(pairs) == 0:
            return []
        n = world.count
        # Node draws are weighted by cluster occupancy: probing a random
        # *peer* lands in a cluster with probability ∝ its population.
        sizes = world.sizes.astype(float)
        total = sizes.sum()
        weights = sizes / total if total > 0 else None
        if weights is None or n == 0 or self._probes == 0:
            return [
                MethodResult(self.name, 0, None, 0, 0) for _ in range(len(pairs))
            ]
        draws = np.empty((len(pairs), self._probes), dtype=np.int64)
        for k, sid in zip(range(len(pairs)), ids):
            rng = self._session_rng(int(sid))
            draws[k] = rng.choice(n, size=self._probes, replace=True, p=weights)
        a_arr, b_arr = self._pair_arrays(pairs)
        valid = (draws != a_arr[:, None]) & (draws != b_arr[:, None])
        path = (
            world.gather_rtt(a_arr[:, None], draws)
            + world.gather_rtt(draws, b_arr[:, None])
            + self._config.relay_delay_rtt_ms
        )
        path[~valid] = np.inf
        finite = np.isfinite(path)
        quality = (finite & (path < self._config.lat_threshold_ms)).sum(axis=1)
        has_finite = finite.any(axis=1)
        best = np.min(path, axis=1)
        probed = valid.sum(axis=1)
        return [
            MethodResult(
                method=self.name,
                quality_paths=int(quality[k]),
                best_rtt_ms=float(best[k]) if has_finite[k] else None,
                messages=int(2 * probed[k]),
                probed_nodes=int(probed[k]),
            )
            for k in range(len(pairs))
        ]
