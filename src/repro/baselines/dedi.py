"""DEDI — RON-like dedicated relay nodes.

One dedicated relay node is provisioned in each of the N clusters whose
ASes have the largest connection degrees (infrastructure goes where the
network is best connected).  Every session probes the whole fleet —
RON's all-pairs maintenance makes this its per-session equivalent — so
the overhead is fixed and the candidate set never grows with the peer
population, which is exactly why DEDI fails the paper's scalability test
(Fig. 17).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod, session_batch
from repro.bgp.asgraph import ASGraph


class DEDIMethod(RelayMethod):
    """Dedicated-relay selection (paper's RON-like baseline)."""

    name = "DEDI"

    def __init__(
        self,
        graph: ASGraph,
        config: Optional[BaselineConfig] = None,
        fleet_size: Optional[int] = None,
    ) -> None:
        super().__init__(config)
        self._graph = graph
        self._fleet_size = (
            self._config.dedicated_count if fleet_size is None else fleet_size
        )
        # The fleet depends on the evaluated world's cluster headers, so
        # it is ranked lazily on first use and cached per world identity.
        self._fleet_world: Optional[int] = None
        self._fleet: List[int] = []

    def fleet_for(self, world) -> List[int]:
        """Cluster indices hosting the dedicated relay nodes in ``world``."""
        if self._fleet_world != id(world):
            self._fleet = _top_degree_clusters(world, self._graph, self._fleet_size)
            self._fleet_world = id(world)
        return list(self._fleet)

    def evaluate_sessions(
        self,
        world,
        sessions: Sequence,
        *,
        session_ids: Optional[Sequence[int]] = None,
        columns=None,
    ) -> List[MethodResult]:
        """Vectorized batch evaluation: the fixed fleet makes all
        sessions' probe scores one pair of gather operations."""
        pairs, _ = session_batch(sessions, session_ids)
        if len(pairs) == 0:
            return []
        fleet = np.asarray(self.fleet_for(world), dtype=np.int64)
        if fleet.size == 0:
            return [
                MethodResult(self.name, 0, None, 0, 0) for _ in range(len(pairs))
            ]
        a_arr, b_arr = self._pair_arrays(pairs)
        path = (
            world.gather_rtt(a_arr[:, None], fleet[None, :])
            + world.gather_rtt(fleet[None, :], b_arr[:, None])
            + self._config.relay_delay_rtt_ms
        )
        excluded = (fleet[None, :] == a_arr[:, None]) | (fleet[None, :] == b_arr[:, None])
        path[excluded] = np.inf
        finite = np.isfinite(path)
        quality = (finite & (path < self._config.lat_threshold_ms)).sum(axis=1)
        has_finite = finite.any(axis=1)
        best = np.min(path, axis=1)
        probed = fleet.size - excluded.sum(axis=1)
        return [
            MethodResult(
                method=self.name,
                quality_paths=int(quality[k]),
                best_rtt_ms=float(best[k]) if has_finite[k] else None,
                messages=int(2 * probed[k]),
                probed_nodes=int(probed[k]),
            )
            for k in range(len(pairs))
        ]


def _top_degree_clusters(world, graph: ASGraph, count: int) -> List[int]:
    """Clusters ranked by their AS's connection degree, highest first."""

    def degree_of(idx: int) -> int:
        asn = int(world.asn_of[idx])
        return graph.degree(asn) if asn in graph else 0

    ranked = sorted(range(world.count), key=lambda i: (-degree_of(i), i))
    return ranked[:count]
