"""DEDI — RON-like dedicated relay nodes.

One dedicated relay node is provisioned in each of the N clusters whose
ASes have the largest connection degrees (infrastructure goes where the
network is best connected).  Every session probes the whole fleet —
RON's all-pairs maintenance makes this its per-session equivalent — so
the overhead is fixed and the candidate set never grows with the peer
population, which is exactly why DEDI fails the paper's scalability test
(Fig. 17).
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod
from repro.bgp.asgraph import ASGraph
from repro.measurement.matrix import DelegateMatrices


class DEDIMethod(RelayMethod):
    """Dedicated-relay selection (paper's RON-like baseline)."""

    name = "DEDI"

    def __init__(
        self,
        matrices: DelegateMatrices,
        graph: ASGraph,
        config: BaselineConfig = BaselineConfig(),
        fleet_size: Optional[int] = None,
    ) -> None:
        super().__init__(matrices, config)
        size = config.dedicated_count if fleet_size is None else fleet_size
        self._fleet = _top_degree_clusters(matrices, graph, size)

    @property
    def fleet(self) -> List[int]:
        """Cluster indices hosting the dedicated relay nodes."""
        return list(self._fleet)

    def evaluate_session(self, a: int, b: int, session_id: int = 0) -> MethodResult:
        candidates = [c for c in self._fleet if c != a and c != b]
        quality, best = self._score_probes(a, b, candidates)
        return MethodResult(
            method=self.name,
            quality_paths=quality,
            best_rtt_ms=best,
            messages=2 * len(candidates),
            probed_nodes=len(candidates),
        )


def _top_degree_clusters(
    matrices: DelegateMatrices, graph: ASGraph, count: int
) -> List[int]:
    """Clusters ranked by their AS's connection degree, highest first."""

    def degree_of(idx: int) -> int:
        asn = int(matrices.asn_of[idx])
        return graph.degree(asn) if asn in graph else 0

    ranked = sorted(range(matrices.count), key=lambda i: (-degree_of(i), i))
    return ranked[:count]
