"""DEDI — RON-like dedicated relay nodes.

One dedicated relay node is provisioned in each of the N clusters whose
ASes have the largest connection degrees (infrastructure goes where the
network is best connected).  Every session probes the whole fleet —
RON's all-pairs maintenance makes this its per-session equivalent — so
the overhead is fixed and the candidate set never grows with the peer
population, which is exactly why DEDI fails the paper's scalability test
(Fig. 17).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod
from repro.bgp.asgraph import ASGraph
from repro.measurement.matrix import DelegateMatrices


class DEDIMethod(RelayMethod):
    """Dedicated-relay selection (paper's RON-like baseline)."""

    name = "DEDI"

    def __init__(
        self,
        matrices: DelegateMatrices,
        graph: ASGraph,
        config: Optional[BaselineConfig] = None,
        fleet_size: Optional[int] = None,
    ) -> None:
        super().__init__(matrices, config)
        size = self._config.dedicated_count if fleet_size is None else fleet_size
        self._fleet = _top_degree_clusters(matrices, graph, size)

    @property
    def fleet(self) -> List[int]:
        """Cluster indices hosting the dedicated relay nodes."""
        return list(self._fleet)

    def evaluate_sessions(
        self,
        pairs: Sequence[Tuple[int, int]],
        session_ids: Optional[Sequence[int]] = None,
    ) -> List[MethodResult]:
        """Vectorized batch evaluation: the fixed fleet makes all
        sessions' probe scores one pair of fancy-indexing operations."""
        if len(pairs) == 0:
            return []
        fleet = np.asarray(self._fleet, dtype=np.int64)
        if fleet.size == 0:
            return [
                MethodResult(self.name, 0, None, 0, 0) for _ in range(len(pairs))
            ]
        a_arr, b_arr = self._pair_arrays(pairs)
        rtt = self._matrices.rtt_ms
        path = (
            rtt[a_arr[:, None], fleet[None, :]]
            + rtt[fleet[None, :], b_arr[:, None]]
            + self._config.relay_delay_rtt_ms
        )
        excluded = (fleet[None, :] == a_arr[:, None]) | (fleet[None, :] == b_arr[:, None])
        path[excluded] = np.inf
        finite = np.isfinite(path)
        quality = (finite & (path < self._config.lat_threshold_ms)).sum(axis=1)
        has_finite = finite.any(axis=1)
        best = np.min(path, axis=1)
        probed = fleet.size - excluded.sum(axis=1)
        return [
            MethodResult(
                method=self.name,
                quality_paths=int(quality[k]),
                best_rtt_ms=float(best[k]) if has_finite[k] else None,
                messages=int(2 * probed[k]),
                probed_nodes=int(probed[k]),
            )
            for k in range(len(pairs))
        ]


def _top_degree_clusters(
    matrices: DelegateMatrices, graph: ASGraph, count: int
) -> List[int]:
    """Clusters ranked by their AS's connection degree, highest first."""

    def degree_of(idx: int) -> int:
        asn = int(matrices.asn_of[idx])
        return graph.degree(asn) if asn in graph else 0

    ranked = sorted(range(matrices.count), key=lambda i: (-degree_of(i), i))
    return ranked[:count]
