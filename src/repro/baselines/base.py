"""Shared machinery for relay-selection baselines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.errors import ConfigurationError
from repro.measurement.matrix import DelegateMatrices
from repro.util.rng import derive_rng


@dataclass(frozen=True, kw_only=True)
class BaselineConfig:
    """Probe budgets of the baseline methods — the paper's Section 7.1
    values: DEDI probes 80 dedicated nodes, RAND 200 random nodes, MIX
    40 dedicated + 120 random."""

    dedicated_count: int = 80
    random_probes: int = 200
    mix_dedicated: int = 40
    mix_random: int = 120
    relay_delay_rtt_ms: float = 40.0
    lat_threshold_ms: float = 300.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("dedicated_count", "random_probes", "mix_dedicated", "mix_random"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.lat_threshold_ms <= 0:
            raise ConfigurationError("lat_threshold_ms must be positive")


@dataclass(frozen=True)
class MethodResult:
    """One method's outcome on one session.

    ``one_hop_quality_paths`` is filled only by methods that distinguish
    one-hop relay IPs from two-hop IP *pairs* (ASAP); for pure probing
    baselines it stays ``None`` and consumers fall back to
    ``quality_paths``.
    """

    method: str
    quality_paths: int
    best_rtt_ms: Optional[float]
    messages: int
    probed_nodes: int
    one_hop_quality_paths: Optional[int] = None


@runtime_checkable
class RelayPolicy(Protocol):
    """Anything Section 7 can evaluate over a batch of cluster pairs.

    A policy has a ``name`` (the method label in records and tables) and
    one primitive, ``evaluate_sessions``: given the caller/callee cluster
    index pairs of a session batch (plus optional per-session ids for
    deterministic RNG namespacing), return one :class:`MethodResult` per
    pair, in order.  The probing baselines (:class:`RelayMethod`
    subclasses) and the ASAP adapter
    (:class:`repro.evaluation.policies.ASAPPolicy`) both satisfy it, so
    experiment runners iterate an arbitrary policy list instead of
    hard-coding per-method branches.
    """

    name: str

    def evaluate_sessions(
        self,
        pairs: Sequence[Tuple[int, int]],
        session_ids: Optional[Sequence[int]] = None,
    ) -> List[MethodResult]:
        """One result per ``(caller_cluster, callee_cluster)`` pair."""
        ...


class RelayMethod(ABC):
    """A relay node selection method evaluated at cluster granularity.

    The batch :meth:`evaluate_sessions` is the abstract primitive —
    subclasses implement it (vectorized where possible); the per-session
    :meth:`evaluate_session` is a thin delegating wrapper over it.
    """

    name: str = "abstract"

    def __init__(
        self, matrices: DelegateMatrices, config: Optional[BaselineConfig] = None
    ) -> None:
        self._matrices = matrices
        self._config = config if config is not None else BaselineConfig()

    @property
    def matrices(self) -> DelegateMatrices:
        return self._matrices

    @property
    def config(self) -> BaselineConfig:
        return self._config

    def evaluate_session(self, a: int, b: int, session_id: int = 0) -> MethodResult:
        """Evaluate one calling session between clusters ``a`` and ``b``
        (delegates to the batch primitive)."""
        return self.evaluate_sessions([(int(a), int(b))], [int(session_id)])[0]

    @abstractmethod
    def evaluate_sessions(
        self,
        pairs: Sequence[Tuple[int, int]],
        session_ids: Optional[Sequence[int]] = None,
    ) -> List[MethodResult]:
        """Evaluate a batch of sessions, one result per ``(a, b)`` pair."""

    @staticmethod
    def _pair_arrays(pairs: Sequence[Tuple[int, int]]) -> Tuple[np.ndarray, np.ndarray]:
        """Caller/callee cluster index arrays of a session batch."""
        a = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
        b = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
        return a, b

    def _score_probes(
        self, a: int, b: int, relay_clusters: Sequence[int]
    ) -> Tuple[int, Optional[float]]:
        """Count quality relay paths / best RTT over probed relay nodes.

        Each probed node lives in some cluster; its relay-path RTT is the
        cluster-granularity estimate plus the relay delay.
        """
        if len(relay_clusters) == 0:
            return 0, None
        relays = np.asarray(relay_clusters, dtype=int)
        rtt = self._matrices.rtt_ms
        path = rtt[a, relays] + rtt[relays, b] + self._config.relay_delay_rtt_ms
        finite = np.isfinite(path)
        quality = int(np.sum(finite & (path < self._config.lat_threshold_ms)))
        best = float(np.min(path[finite])) if np.any(finite) else None
        return quality, best

    def _session_rng(self, session_id: int) -> np.random.Generator:
        return derive_rng(self._config.seed, self.name, str(session_id))
