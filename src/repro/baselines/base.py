"""Shared machinery for relay-selection baselines.

The single batch-evaluation signature every policy implements:

    evaluate_sessions(world, sessions, *, session_ids=None, columns=None)

``world`` is the matrix read surface — dense
:class:`~repro.measurement.matrix.DelegateMatrices` or the streamed
:class:`~repro.worldarrays.virtual.VirtualMatrices` view, both exposing
the same cell/gather/block protocol.  ``sessions`` accepts plain
``(caller_cluster, callee_cluster)`` tuples or
:class:`~repro.evaluation.sessions.Session` objects (whose
``session_id`` then namespaces per-session RNG draws).  Methods are
constructed *without* a world: the same policy instance evaluates any
world at any scale, which is what lets one experiment engine serve
every tier.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import derive_rng


@dataclass(frozen=True, kw_only=True)
class BaselineConfig:
    """Probe budgets of the baseline methods — the paper's Section 7.1
    values: DEDI probes 80 dedicated nodes, RAND 200 random nodes, MIX
    40 dedicated + 120 random."""

    dedicated_count: int = 80
    random_probes: int = 200
    mix_dedicated: int = 40
    mix_random: int = 120
    relay_delay_rtt_ms: float = 40.0
    lat_threshold_ms: float = 300.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("dedicated_count", "random_probes", "mix_dedicated", "mix_random"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.lat_threshold_ms <= 0:
            raise ConfigurationError("lat_threshold_ms must be positive")


@dataclass(frozen=True)
class MethodResult:
    """One method's outcome on one session.

    ``one_hop_quality_paths`` is filled only by methods that distinguish
    one-hop relay IPs from two-hop IP *pairs* (ASAP); for pure probing
    baselines it stays ``None`` and consumers fall back to
    ``quality_paths``.
    """

    method: str
    quality_paths: int
    best_rtt_ms: Optional[float]
    messages: int
    probed_nodes: int
    one_hop_quality_paths: Optional[int] = None


def session_batch(
    sessions: Sequence, session_ids: Optional[Sequence[int]] = None
) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Normalize a session batch to ``(pairs, ids)``.

    ``sessions`` may mix ``(a, b)`` tuples with ``Session`` objects; ids
    come from the objects' ``session_id``, the explicit ``session_ids``
    sequence, or enumeration order, in that priority.
    """
    pairs: List[Tuple[int, int]] = []
    ids: List[int] = []
    for index, item in enumerate(sessions):
        if hasattr(item, "caller_cluster"):
            pairs.append((int(item.caller_cluster), int(item.callee_cluster)))
            ids.append(int(item.session_id))
        else:
            a, b = item
            pairs.append((int(a), int(b)))
            ids.append(int(session_ids[index]) if session_ids is not None else index)
    if session_ids is not None and len(session_ids) != len(pairs):
        raise ConfigurationError("session_ids must match sessions in length")
    return pairs, ids


@runtime_checkable
class RelayPolicy(Protocol):
    """Anything Section 7 can evaluate over a batch of sessions.

    A policy has a ``name`` (the method label in records and tables) and
    one primitive, ``evaluate_sessions``: given a world view and the
    session batch, return one :class:`MethodResult` per session, in
    order.  The probing baselines (:class:`RelayMethod` subclasses) and
    the ASAP adapter (:class:`repro.evaluation.policies.ASAPPolicy`)
    both satisfy it, so experiment runners iterate an arbitrary policy
    list instead of hard-coding per-method branches.
    """

    name: str

    def evaluate_sessions(
        self,
        world,
        sessions: Sequence,
        *,
        session_ids: Optional[Sequence[int]] = None,
        columns=None,
    ) -> List[MethodResult]:
        """One result per session of the batch."""
        ...


class RelayMethod(ABC):
    """A relay node selection method evaluated at cluster granularity.

    The batch :meth:`evaluate_sessions` is the abstract primitive —
    subclasses implement it (vectorized where possible); the per-session
    :meth:`evaluate_session` is a thin delegating wrapper over it.

    The ``columns`` keyword is reserved for callers that pre-assembled
    destination columns; the shipped views manage column caching (memo
    LRU or spill store) internally, so methods may ignore it.
    """

    name: str = "abstract"

    def __init__(self, config: Optional[BaselineConfig] = None) -> None:
        self._config = config if config is not None else BaselineConfig()

    @property
    def config(self) -> BaselineConfig:
        return self._config

    def evaluate_session(
        self, world, a: int, b: int, session_id: int = 0
    ) -> MethodResult:
        """Evaluate one calling session between clusters ``a`` and ``b``
        (delegates to the batch primitive)."""
        return self.evaluate_sessions(
            world, [(int(a), int(b))], session_ids=[int(session_id)]
        )[0]

    @abstractmethod
    def evaluate_sessions(
        self,
        world,
        sessions: Sequence,
        *,
        session_ids: Optional[Sequence[int]] = None,
        columns=None,
    ) -> List[MethodResult]:
        """Evaluate a batch of sessions, one result per session."""

    @staticmethod
    def _pair_arrays(pairs: Sequence[Tuple[int, int]]) -> Tuple[np.ndarray, np.ndarray]:
        """Caller/callee cluster index arrays of a session batch."""
        a = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
        b = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
        return a, b

    def _score_probes(
        self, world, a: int, b: int, relay_clusters: Sequence[int]
    ) -> Tuple[int, Optional[float]]:
        """Count quality relay paths / best RTT over probed relay nodes.

        Each probed node lives in some cluster; its relay-path RTT is the
        cluster-granularity estimate plus the relay delay.
        """
        if len(relay_clusters) == 0:
            return 0, None
        relays = np.asarray(relay_clusters, dtype=int)
        path = (
            world.gather_rtt(a, relays)
            + world.gather_rtt(relays, b)
            + self._config.relay_delay_rtt_ms
        )
        finite = np.isfinite(path)
        quality = int(np.sum(finite & (path < self._config.lat_threshold_ms)))
        best = float(np.min(path[finite])) if np.any(finite) else None
        return quality, best

    def _session_rng(self, session_id: int) -> np.random.Generator:
        return derive_rng(self._config.seed, self.name, str(session_id))
