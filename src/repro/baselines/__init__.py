"""Baseline relay-selection methods (paper Section 7.1).

- **DEDI** — RON-like: a fixed fleet of dedicated relay nodes placed in
  the clusters with the largest AS connection degrees (80 by default).
- **RAND** — SOSR-like: probe random peer nodes per session (200).
- **MIX** — both: 40 dedicated + 120 random probes.
- **OPT** — offline optimum: exhaustively iterate one-hop and two-hop
  relay paths over all measured data (no message cost; upper bound).

All methods score relay paths against the same delegate matrices ASAP
uses, so differences come purely from *which* relays each one considers.
"""

from repro.baselines.base import BaselineConfig, MethodResult, RelayMethod, RelayPolicy
from repro.baselines.dedi import DEDIMethod
from repro.baselines.rand import RANDMethod
from repro.baselines.mix import MIXMethod
from repro.baselines.opt import OPTMethod

__all__ = [
    "BaselineConfig",
    "DEDIMethod",
    "MIXMethod",
    "MethodResult",
    "OPTMethod",
    "RANDMethod",
    "RelayMethod",
    "RelayPolicy",
]
