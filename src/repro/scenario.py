"""End-to-end scenario assembly: one object holding a whole simulated world.

A :class:`Scenario` is the reproduction of the paper's data pipeline
(Fig. 1) as an executable artifact:

1. generate an annotated AS topology (stands in for the real Internet);
2. allocate prefixes and export BGP RIB snapshots + update streams from
   vantage ASes — *serialized to the text dump format and re-parsed*, so
   the BGP parsing code path is genuinely exercised;
3. build the prefix→origin-AS table and infer the annotated AS graph from
   the parsed paths with Gao's algorithm (what ASAP's bootstraps do);
4. synthesize the online peer population and cluster it by longest
   matched prefix, electing delegates;
5. inject network conditions (congestion / failures / loss) and compute
   the all-pairs delegate RTT/loss/hop matrices.

Every stochastic choice derives from ``ScenarioConfig.seed``, so a config
value uniquely determines the world.  That determinism powers two
runtime knobs that never change results:

- ``workers`` — fan matrix assembly (and ASAP close-set prebuilds) out
  over a fork-start process pool; output is bit-for-bit identical to
  the serial path;
- ``cache_dir`` — a content-addressed artifact cache
  (:mod:`repro.storage.cache`): warm :func:`build_scenario` calls load
  the world and its matrices from disk instead of regenerating them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.bgp.asgraph import ASGraph
from repro.bgp.prefix_table import PrefixOriginTable
from repro.bgp.relationships import infer_relationships
from repro.bgp.rib import RoutingTable, format_rib_dump, parse_rib_dump
from repro.bgp.updates import apply_updates
from repro.measurement.conditions import (
    ConditionsConfig,
    NetworkConditions,
    generate_conditions,
)
from repro.measurement.latency import LatencyModel
from repro.measurement.matrix import DelegateMatrices, compute_delegate_matrices
from repro.topology.bgpfeed import generate_rib_entries, generate_update_stream
from repro.topology.clustering import ClusterIndex, build_clusters
from repro.topology.generator import Topology, TopologyConfig, generate_topology
from repro.topology.population import (
    PeerPopulation,
    PopulationConfig,
    generate_population,
)
from repro.topology.prefixes import PrefixAllocation, allocate_prefixes


@dataclass(frozen=True, kw_only=True)
class ScenarioConfig:
    """Full description of one simulated world (keyword-only fields)."""

    topology: TopologyConfig = TopologyConfig()
    population: PopulationConfig = PopulationConfig()
    conditions: ConditionsConfig = ConditionsConfig()
    vantage_count: int = 10
    # When True the protocol layer sees the Gao-inferred graph (as in the
    # paper); when False it sees the generator's ground-truth annotations.
    use_inferred_graph: bool = True
    # When True, stub prefixes are provider-assigned space carved inside
    # their primary provider's announced aggregate, so the BGP table
    # contains overlapping prefixes and longest-prefix match genuinely
    # discriminates (real-table behaviour).  Flat disjoint allocation
    # otherwise.
    hierarchical_prefixes: bool = False
    seed: int = 0
    # Runtime-only knobs — they control how a world is built, never what
    # is built, and are excluded from artifact-cache keys.  ``workers``:
    # None defers to $REPRO_WORKERS (else serial), <= 0 means all CPUs.
    # ``cache_dir``: None defers to $REPRO_CACHE_DIR (else no caching).
    workers: Optional[int] = None
    cache_dir: Optional[str] = None

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """This config re-seeded everywhere (topology/population/conditions)."""
        return replace(
            self,
            seed=seed,
            topology=replace(self.topology, seed=seed),
            population=replace(self.population, seed=seed),
            conditions=replace(self.conditions, seed=seed),
        )

    @classmethod
    def preset(cls, scale: str, seed: int = 0) -> "ScenarioConfig":
        """The registered config of a named scale tier.

        One classmethod replaces the old per-scale helper functions
        (``tiny_config``/``small_config``/``evaluation_config``/
        ``config_for_scale``, now deprecation shims).  The tier table:

        ========== ========== ============ ====================================
        scale      clusters~  hosts        purpose
        ========== ========== ============ ====================================
        tiny       ~40        300          unit tests (sub-second build)
        small      ~350       3,000        examples, quick runs
        10k        ~690       10,000       streaming-parity tier (dense fits)
        evaluation ~1,300     20,000       benchmark scale (paper stand-in)
        100k       ~8,600     100,000      streamed section-7 tier
        1m         ~8,600     1,000,000    million-host smoke tier
        ========== ========== ============ ====================================

        ``tiny``/``small``/``evaluation`` produce byte-identical configs
        to the old helpers, so existing artifact-cache keys stay valid.
        """
        try:
            factory = _PRESETS[scale]
        except KeyError:
            raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}") from None
        return factory(seed)

    @classmethod
    def from_cli_args(cls, args) -> "ScenarioConfig":
        """The scenario config described by parsed CLI arguments.

        Reads the common knobs every ``repro.cli`` command declares —
        ``--scale``, ``--seed``, ``--workers``, ``--cache-dir`` — from an
        ``argparse.Namespace`` (missing attributes fall back to their CLI
        defaults), so commands build scenarios with one call and a new
        knob is declared in exactly one place.
        """
        scale = getattr(args, "scale", "small")
        config = cls.preset(scale, getattr(args, "seed", 0))
        return replace(
            config,
            workers=getattr(args, "workers", None),
            cache_dir=getattr(args, "cache_dir", None),
        )


@dataclass
class Scenario:
    """A fully built world, ready for protocol runs and experiments."""

    config: ScenarioConfig
    topology: Topology
    allocation: PrefixAllocation
    routing_table: RoutingTable
    prefix_table: PrefixOriginTable
    inferred_graph: ASGraph
    conditions: NetworkConditions
    population: PeerPopulation
    clusters: ClusterIndex
    latency: LatencyModel
    _matrices: Optional[DelegateMatrices] = field(default=None, repr=False)
    # A streamed (never-materialized) matrix view attached by the
    # experiment engine; when set, ``matrix_view()`` serves it and the
    # dense ``.matrices`` property refuses to materialize N×N.
    _virtual: Optional[object] = field(default=None, repr=False)
    # False for derived worlds (subsampled populations, measured-matrix
    # views) whose contents no longer match their config's cache key;
    # the artifact cache refuses to serve or store them.
    cacheable: bool = field(default=True, repr=False)

    @property
    def protocol_graph(self) -> ASGraph:
        """The AS graph the protocol layer operates on (see config flag)."""
        return self.inferred_graph if self.config.use_inferred_graph else self.topology.graph

    @property
    def matrices(self) -> DelegateMatrices:
        """All-pairs delegate matrices, computed on first use and cached."""
        if self._virtual is not None:
            raise RuntimeError(
                "this scenario streams its matrices (a VirtualMatrices view "
                "is attached); use matrix_view() instead of materializing "
                "the dense N×N arrays"
            )
        if self._matrices is None:
            self._matrices = compute_delegate_matrices(
                self.latency, self.clusters, workers=self.config.workers
            )
        return self._matrices

    def attach_virtual_matrices(self, virtual) -> None:
        """Attach a streamed matrix view (the scenario stops being
        cacheable — its artifacts would force dense materialization)."""
        if self._matrices is not None:
            raise RuntimeError("dense matrices already materialized")
        self._virtual = virtual
        self.cacheable = False

    def matrix_view(self):
        """The matrix read surface every consumer should code against:
        the attached streamed view when present, the dense matrices
        otherwise.  Both implement the same cell/gather/block protocol
        (see ``DelegateMatrices``' world-view methods)."""
        if self._virtual is not None:
            return self._virtual
        return self.matrices

    def with_measured_matrices(
        self,
        seed: int = 0,
        error_sigma: float = 0.06,
        non_response_rate: float = 0.10,
    ) -> "Scenario":
        """A copy of this scenario whose matrices are King-*measured*
        (multiplicative noise + non-responses) instead of ground truth.

        The paper's pipeline only ever saw King estimates (it obtained
        answers for ~70% of delegate pairs); experiments that want the
        measured rather than omniscient view run on this copy.  The
        latency ground truth is unchanged — only what the protocol and
        methods *believe* about it."""
        from repro.measurement.matrix import apply_king_noise

        noisy = apply_king_noise(
            self.matrices,
            seed=seed,
            error_sigma=error_sigma,
            non_response_rate=non_response_rate,
        )
        return Scenario(
            config=self.config,
            topology=self.topology,
            allocation=self.allocation,
            routing_table=self.routing_table,
            prefix_table=self.prefix_table,
            inferred_graph=self.inferred_graph,
            conditions=self.conditions,
            population=self.population,
            clusters=self.clusters,
            latency=self.latency,
            _matrices=noisy,
            cacheable=False,
        )


def build_scenario(config: Optional[ScenarioConfig] = None) -> Scenario:
    """Build a scenario from its config (deterministic in ``config``).

    With a cache directory configured (``config.cache_dir`` or
    ``$REPRO_CACHE_DIR``), a warm call loads the previously built world
    — topology, BGP state, population, *and* delegate matrices — from
    disk instead of regenerating anything; a cold call builds, computes
    the matrices, and persists the artifacts for the next run.
    """
    from repro import obs
    from repro.storage.cache import ScenarioCache, resolve_cache_dir, scenario_cache_key
    from repro.util.parallel import resolve_workers

    if config is None:
        config = ScenarioConfig()
    obs.annotate(
        config_key=scenario_cache_key(config),
        seed=config.seed,
        workers=resolve_workers(config.workers),
    )
    cache_root = resolve_cache_dir(config.cache_dir)
    cache = ScenarioCache(cache_root) if cache_root is not None else None
    with obs.span("scenario.build", cached=cache is not None):
        if cache is not None:
            cached = cache.load(config)
            if cached is not None:
                obs.counter("cache.scenario.hits").inc()
                return cached
            obs.counter("cache.scenario.misses").inc()
        with obs.span("scenario.generate"):
            topology = generate_topology(config.topology)
            scenario = build_scenario_from_topology(topology, config)
        if cache is not None:
            cache.save(scenario)  # forces matrix computation before persisting
    return scenario


def build_scenario_from_topology(
    topology: Topology, config: Optional[ScenarioConfig] = None
) -> Scenario:
    """Build a scenario on a pre-built topology (e.g. an alternative
    family from :mod:`repro.topology.models`); everything downstream of
    topology generation — BGP feed, inference, population, weather,
    matrices — runs identically."""
    if config is None:
        config = ScenarioConfig()
    if config.hierarchical_prefixes:
        from repro.topology.prefixes import allocate_prefixes_hierarchical

        allocation = allocate_prefixes_hierarchical(topology, seed=config.seed)
    else:
        allocation = allocate_prefixes(topology, seed=config.seed)

    # BGP feed: round-trip through the text dump format so the parser is
    # part of the pipeline, then replay the update stream on top.
    raw_entries = generate_rib_entries(
        topology, allocation, vantage_count=config.vantage_count, seed=config.seed
    )
    dump_text = format_rib_dump(raw_entries)
    parsed_entries = list(parse_rib_dump(dump_text.splitlines()))
    routing_table = RoutingTable.from_entries(parsed_entries)
    updates = generate_update_stream(
        topology, allocation, vantage_count=config.vantage_count, seed=config.seed
    )
    apply_updates(routing_table, updates)

    prefix_table = PrefixOriginTable.from_routing_table(routing_table)
    inferred_graph = infer_relationships(routing_table.entries())

    conditions = generate_conditions(topology, config.conditions)
    population = generate_population(topology, allocation, config.population)
    clusters = build_clusters(population, prefix_table, seed=config.seed)
    latency = LatencyModel(topology, conditions, population, seed=config.seed)

    return Scenario(
        config=config,
        topology=topology,
        allocation=allocation,
        routing_table=routing_table,
        prefix_table=prefix_table,
        inferred_graph=inferred_graph,
        conditions=conditions,
        population=population,
        clusters=clusters,
        latency=latency,
    )


def subsample_scenario(scenario: Scenario, fraction: float, seed: int = 0) -> Scenario:
    """A copy of the scenario with a random subset of the online hosts.

    Topology, BGP data and network conditions are shared (the Internet
    does not change); only the online peer population shrinks, so
    clusters and delegate matrices are rebuilt.  This powers the paper's
    scalability experiment (Fig. 17), which compares per-capita quality
    paths across population sizes.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    from repro.topology.population import PeerPopulation  # local: avoid cycle
    from repro.util.rng import derive_rng

    rng = derive_rng(seed, "subsample")
    hosts = scenario.population.hosts
    keep = max(2, int(round(fraction * len(hosts))))
    chosen = sorted(
        (int(i) for i in rng.choice(len(hosts), size=keep, replace=False))
    )
    population = PeerPopulation()
    for idx in chosen:
        population.add(hosts[idx])
    clusters = build_clusters(population, scenario.prefix_table, seed=seed)
    latency = LatencyModel(
        scenario.topology, scenario.conditions, population, seed=scenario.config.seed
    )
    return Scenario(
        config=scenario.config,
        topology=scenario.topology,
        allocation=scenario.allocation,
        routing_table=scenario.routing_table,
        prefix_table=scenario.prefix_table,
        inferred_graph=scenario.inferred_graph,
        conditions=scenario.conditions,
        population=population,
        clusters=clusters,
        latency=latency,
        cacheable=False,
    )


# -- scale preset registry --------------------------------------------
#
# The single source of scale tiers, served by ScenarioConfig.preset().
# tiny/small/evaluation are byte-identical to the pre-preset helper
# functions so content-addressed cache keys are stable across the API
# change; 10k/100k/1m extend the table upward for the streaming engine.


def _tiny_preset(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        topology=TopologyConfig(tier1_count=3, tier2_count=10, tier3_count=40, seed=seed),
        population=PopulationConfig(host_count=300, seed=seed),
        conditions=ConditionsConfig(seed=seed),
        vantage_count=5,
        seed=seed,
    )


def _small_preset(seed: int) -> ScenarioConfig:
    return ScenarioConfig().with_seed(seed)


def _10k_preset(seed: int) -> ScenarioConfig:
    # The streaming-parity tier: large enough that streaming is worth
    # exercising, small enough that the dense N×N comparison still fits.
    return ScenarioConfig(
        topology=TopologyConfig(tier1_count=6, tier2_count=80, tier3_count=640),
        population=PopulationConfig(host_count=10_000),
        vantage_count=8,
    ).with_seed(seed)


def _evaluation_preset(seed: int) -> ScenarioConfig:
    # The scaled-down stand-in for the paper's 23,366-IP / 7,171-cluster
    # measurement dataset; keeps DEDI's 80-cluster fleet a small
    # fraction of all clusters, as in the paper.
    return ScenarioConfig(
        topology=TopologyConfig(tier1_count=10, tier2_count=150, tier3_count=1200),
        population=PopulationConfig(host_count=20000),
    ).with_seed(seed)


def _100k_preset(seed: int) -> ScenarioConfig:
    # Dense matrices at this tier would need ~1.8 GB ×2 float arrays;
    # the streaming engine runs it without materializing any of them.
    # 8k+ stub ASes overflow the flat 10/8 allocator, so these tiers use
    # provider-aggregatable space (a /4 super-block) — also the more
    # realistic address plan at Internet-like AS counts.
    return ScenarioConfig(
        topology=TopologyConfig(tier1_count=12, tier2_count=200, tier3_count=8000),
        population=PopulationConfig(host_count=100_000),
        hierarchical_prefixes=True,
    ).with_seed(seed)


def _1m_preset(seed: int) -> ScenarioConfig:
    # Same Internet as 100k, ten times the peers: cluster count (and the
    # matrix) stays put while populations and workloads scale up.
    return ScenarioConfig(
        topology=TopologyConfig(tier1_count=12, tier2_count=200, tier3_count=8000),
        population=PopulationConfig(host_count=1_000_000),
        hierarchical_prefixes=True,
    ).with_seed(seed)


_PRESETS = {
    "tiny": _tiny_preset,
    "small": _small_preset,
    "10k": _10k_preset,
    "evaluation": _evaluation_preset,
    "100k": _100k_preset,
    "1m": _1m_preset,
}

#: Named scales the CLI (and :meth:`ScenarioConfig.preset`) accept.
SCALES = tuple(_PRESETS)


def _deprecated_config_helper(name: str, scale: str):
    import warnings

    warnings.warn(
        f"{name}() is deprecated; use ScenarioConfig.preset({scale!r}, seed)",
        DeprecationWarning,
        stacklevel=3,
    )


def tiny_config(seed: int = 0) -> ScenarioConfig:
    """Deprecated: use ``ScenarioConfig.preset("tiny", seed)``."""
    _deprecated_config_helper("tiny_config", "tiny")
    return ScenarioConfig.preset("tiny", seed)


def tiny_scenario(seed: int = 0) -> Scenario:
    """A very small world for unit tests (sub-second build)."""
    return build_scenario(ScenarioConfig.preset("tiny", seed))


def small_config(seed: int = 0) -> ScenarioConfig:
    """Deprecated: use ``ScenarioConfig.preset("small", seed)``."""
    _deprecated_config_helper("small_config", "small")
    return ScenarioConfig.preset("small", seed)


def small_scenario(seed: int = 0) -> Scenario:
    """A mid-size world (~350 clusters, ~3k hosts): examples, quick runs."""
    return build_scenario(ScenarioConfig.preset("small", seed))


def evaluation_config(seed: int = 0) -> ScenarioConfig:
    """Deprecated: use ``ScenarioConfig.preset("evaluation", seed)``."""
    _deprecated_config_helper("evaluation_config", "evaluation")
    return ScenarioConfig.preset("evaluation", seed)


def default_scenario(seed: int = 0) -> Scenario:
    """The standard world used by benchmarks (evaluation scale)."""
    return build_scenario(ScenarioConfig.preset("evaluation", seed))


def config_for_scale(scale: str, seed: int = 0) -> ScenarioConfig:
    """Deprecated: use ``ScenarioConfig.preset(scale, seed)``."""
    import warnings

    warnings.warn(
        "config_for_scale() is deprecated; use ScenarioConfig.preset(scale, seed)",
        DeprecationWarning,
        stacklevel=2,
    )
    return ScenarioConfig.preset(scale, seed)
