"""``repro.obs`` — run-wide observability: metrics, spans, run manifests.

The paper's core claims are *accounting* claims — probe message counts
(Fig. 18), call-setup stabilization (Skype Limit 3), close-set build
cost — so the repro carries a first-class, zero-dependency measurement
layer.  Three pieces:

- a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges
  and histograms (created on demand by name);
- :mod:`span <repro.obs.spans>` timers with nesting and a structured
  JSONL :class:`~repro.obs.events.EventSink`;
- a per-run :mod:`manifest <repro.obs.manifest>` — canonical config
  hash (shared with :mod:`repro.storage.cache`), seed, wall times,
  cache hit/miss counts, worker fan-out and the final counter snapshot
  — written next to every result directory.

**Off by default, near-zero overhead.**  Instrumented code calls the
module-level hooks (:func:`counter`, :func:`span`, …); with no active
run these return shared no-op instruments, so the cost is one global
read and an attribute call.  A run is activated explicitly::

    with obs.observe(obs_dir="out/obs", command="section7") as run:
        ...                      # counters/spans/events accumulate
    # run_manifest.json + events.jsonl now exist under out/obs

**Fork-safe.**  :func:`repro.util.parallel.run_forked` gives each pool
task a fresh child registry (:func:`begin_forked_child`) and merges the
returned snapshots into the parent (:func:`merge_child_snapshot`), so
counters from worker processes sum exactly once and the serial path is
never double-counted.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.events import LOG_LEVELS, EventSink
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import NULL_SPAN, Span
from repro.obs.timeseries import (
    NULL_TIMELINE,
    TELEMETRY_FILENAME,
    TELEMETRY_SCHEMA_VERSION,
    TimeSeries,
    WindowSampler,
    load_telemetry_file,
    validate_telemetry_records,
)
from repro.obs.trace import (
    NULL_TRACE_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    TRACES_FILENAME,
    Tracer,
    TraceSpan,
    load_trace_file,
    load_trace_files,
    validate_trace_records,
)

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_TIMELINE",
    "NULL_TRACER",
    "NULL_TRACE_SPAN",
    "RunObserver",
    "TELEMETRY_FILENAME",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACES_FILENAME",
    "TRACE_SCHEMA_VERSION",
    "TimeSeries",
    "Tracer",
    "TraceSpan",
    "WindowSampler",
    "active",
    "annotate",
    "begin_forked_child",
    "collect_forked_child",
    "counter",
    "enabled",
    "event",
    "finish_run",
    "gauge",
    "histogram",
    "load_manifest",
    "load_telemetry_file",
    "load_trace_file",
    "load_trace_files",
    "merge_child_snapshot",
    "observe",
    "span",
    "start_run",
    "timeline",
    "tracer",
    "validate_manifest",
    "validate_telemetry_records",
    "validate_trace_records",
    "write_manifest",
]

#: Events file name inside an observability directory.
EVENTS_FILENAME = "events.jsonl"


class RunObserver:
    """One run's accumulated observability state.

    Owns the metrics registry, the (optional) JSONL event sink, the
    manifest annotations and the span-nesting depth.  Create through
    :func:`start_run` / :func:`observe` rather than directly so the
    module-level hooks see it.
    """

    def __init__(
        self,
        obs_dir: Optional[Union[str, Path]] = None,
        command: str = "",
        argv: Optional[List[str]] = None,
        log_level: str = "info",
        trace: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.timeline = TimeSeries()
        self.obs_dir = Path(obs_dir) if obs_dir is not None else None
        self.command = command
        self.argv = list(argv) if argv is not None else []
        self.log_level = log_level
        self.started_at = time.time()
        self.run_id = f"{int(self.started_at * 1000):x}-{os.getpid():x}"
        self.annotations: dict = {}
        self.span_depth = 0
        self.finished = False
        self.sink: Optional[EventSink] = (
            EventSink(
                self.obs_dir / EVENTS_FILENAME,
                level=log_level,
                start_time=self.started_at,
            )
            if self.obs_dir is not None
            else None
        )
        self.trace: Optional[Tracer] = (
            Tracer(
                self.obs_dir / TRACES_FILENAME
                if self.obs_dir is not None
                else None
            )
            if trace
            else None
        )
        if self.sink is not None:
            self.sink.emit("event", "run.start", command=command, run_id=self.run_id)

    # -- manifest ----------------------------------------------------------

    def annotate(self, **fields) -> None:
        """Record manifest facts (seed, scale, config hash, …)."""
        self.annotations.update(fields)

    def manifest_document(self) -> dict:
        """The run manifest as a plain dict (see :mod:`repro.obs.manifest`)."""
        snapshot = self.registry.snapshot()
        counters = snapshot["counters"]
        known = {"seed", "scale", "config_key", "workers", "parallel", "soak"}
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "argv": self.argv,
            "started_at": datetime.fromtimestamp(
                self.started_at, tz=timezone.utc
            ).isoformat(),
            "wall_seconds": round(time.time() - self.started_at, 6),
            "seed": self.annotations.get("seed"),
            "scale": self.annotations.get("scale"),
            "config_key": self.annotations.get("config_key"),
            "workers": self.annotations.get("workers"),
            "parallel": self.annotations.get("parallel"),
            "soak": self.annotations.get("soak"),
            "cache": {
                "scenario_hits": counters.get("cache.scenario.hits", 0),
                "scenario_misses": counters.get("cache.scenario.misses", 0),
                "close_set_hits": counters.get("cache.close_sets.hits", 0),
                "close_set_misses": counters.get("cache.close_sets.misses", 0),
            },
            "network": {
                "messages_dropped": counters.get("net.dropped", 0),
                "request_timeouts": counters.get("net.timeouts", 0),
            },
            "telemetry": {
                "file": TELEMETRY_FILENAME if self.obs_dir is not None else None,
                "samples": self.timeline.sample_count,
                "series": len(self.timeline.series_names()),
                "cadence_ms": self.timeline.cadence_ms,
                "samples_dropped": counters.get("telemetry.samples_dropped", 0),
            },
            "counters": counters,
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "events_file": EVENTS_FILENAME if self.sink is not None else None,
            "events_written": self.sink.events_written if self.sink is not None else 0,
            "traces_file": (
                TRACES_FILENAME
                if self.trace is not None and self.trace.path is not None
                else None
            ),
            "traces_written": (
                self.trace.records_written if self.trace is not None else 0
            ),
            "annotations": {
                k: v for k, v in sorted(self.annotations.items()) if k not in known
            },
        }

    def finish(self) -> Optional[Path]:
        """Close the sink and write the manifest; returns its path."""
        if self.finished:
            raise RuntimeError("run observer already finished")
        self.finished = True
        if self.sink is not None:
            self.sink.emit(
                "event",
                "run.finish",
                wall_s=round(time.time() - self.started_at, 6),
            )
        document = self.manifest_document()
        if self.sink is not None:
            self.sink.close()
        if self.trace is not None:
            self.trace.close()
        if self.obs_dir is None:
            return None
        self.timeline.write(self.obs_dir / TELEMETRY_FILENAME)
        return write_manifest(self.obs_dir / MANIFEST_FILENAME, document)


# -- the active run and its no-op stand-ins ---------------------------------

_ACTIVE: Optional[RunObserver] = None


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = None

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


def enabled() -> bool:
    """Whether a run observer is currently active."""
    return _ACTIVE is not None


def active() -> Optional[RunObserver]:
    """The active run observer, or ``None``."""
    return _ACTIVE


def counter(name: str):
    """The named counter of the active run (shared no-op when off)."""
    observer = _ACTIVE
    return observer.registry.counter(name) if observer is not None else _NULL_COUNTER


def gauge(name: str):
    """The named gauge of the active run (shared no-op when off)."""
    observer = _ACTIVE
    return observer.registry.gauge(name) if observer is not None else _NULL_GAUGE


def histogram(name: str):
    """The named histogram of the active run (shared no-op when off)."""
    observer = _ACTIVE
    return (
        observer.registry.histogram(name) if observer is not None else _NULL_HISTOGRAM
    )


def timeline():
    """The active run's time-series buffer (shared falsy no-op when off).

    Call ``obs.timeline().sample(series, t_ms, value, **tags)`` with a
    virtual-clock timestamp; samples land in ``telemetry.jsonl`` at run
    close (see :mod:`repro.obs.timeseries`).
    """
    observer = _ACTIVE
    return observer.timeline if observer is not None else NULL_TIMELINE


def tracer():
    """The active run's causal tracer (shared falsy no-op when off).

    Falsy unless the run was started with ``trace=True``, so call sites
    guard with ``if (t := obs.tracer()):`` — or just hold the spans it
    returns, which are themselves free no-ops when tracing is off.
    """
    observer = _ACTIVE
    if observer is not None and observer.trace is not None:
        return observer.trace
    return NULL_TRACER


def span(name: str, level: str = "info", **fields):
    """A timed span context manager (free no-op when off)."""
    observer = _ACTIVE
    if observer is None:
        return NULL_SPAN
    return Span(observer, name, level=level, **fields)


def event(name: str, level: str = "info", **fields) -> None:
    """Emit one structured JSONL event (dropped when off or below level)."""
    observer = _ACTIVE
    if observer is not None and observer.sink is not None:
        observer.sink.emit("event", name, level=level, **fields)


def annotate(**fields) -> None:
    """Attach manifest facts to the active run (no-op when off)."""
    observer = _ACTIVE
    if observer is not None:
        observer.annotate(**fields)


def start_run(
    obs_dir: Optional[Union[str, Path]] = None,
    command: str = "",
    argv: Optional[List[str]] = None,
    log_level: str = "info",
    trace: bool = False,
) -> RunObserver:
    """Activate observability for the current process.

    With ``obs_dir`` set, events stream to ``<obs_dir>/events.jsonl``
    and :func:`finish_run` writes ``<obs_dir>/run_manifest.json``;
    without it, metrics still accumulate in memory (useful in tests).
    With ``trace=True``, causal trace records additionally stream to
    ``<obs_dir>/traces.jsonl`` (see :mod:`repro.obs.trace`).
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("an observability run is already active")
    _ACTIVE = RunObserver(
        obs_dir=obs_dir, command=command, argv=argv, log_level=log_level, trace=trace
    )
    return _ACTIVE


def finish_run() -> Optional[Path]:
    """Finish the active run; returns the manifest path (if any)."""
    global _ACTIVE
    observer = _ACTIVE
    if observer is None:
        return None
    _ACTIVE = None
    return observer.finish()


@contextmanager
def observe(
    obs_dir: Optional[Union[str, Path]] = None,
    command: str = "",
    argv: Optional[List[str]] = None,
    log_level: str = "info",
    trace: bool = False,
):
    """``start_run``/``finish_run`` as a context manager."""
    observer = start_run(
        obs_dir=obs_dir, command=command, argv=argv, log_level=log_level, trace=trace
    )
    try:
        yield observer
    finally:
        finish_run()


# -- fork fan-out support ----------------------------------------------------


def begin_forked_child() -> None:
    """Reset the inherited observer inside a forked pool task.

    The child keeps accumulating metrics, but into a fresh registry (so
    the parent's pre-fork totals are not re-counted on merge) and with
    the event sink and tracer detached (children must not interleave
    writes on the parent's file handles, and trace ids are a parent-run
    sequence that forked work must not race).
    """
    observer = _ACTIVE
    if observer is not None:
        observer.registry = MetricsRegistry()
        observer.timeline = TimeSeries(cadence_ms=observer.timeline.cadence_ms)
        observer.sink = None
        observer.trace = None


def collect_forked_child() -> Optional[dict]:
    """Snapshot of the child-side registry (plus any timeline samples the
    task emitted), for the parent to merge."""
    observer = _ACTIVE
    if observer is None:
        return None
    snapshot = observer.registry.snapshot()
    samples = observer.timeline.snapshot()
    if samples:
        snapshot["timeline"] = samples
    return snapshot


def merge_child_snapshot(snapshot: Optional[dict]) -> None:
    """Merge one pool task's snapshot into the parent registry/timeline."""
    observer = _ACTIVE
    if observer is not None and snapshot is not None:
        observer.registry.merge_snapshot(snapshot)
        observer.timeline.merge_samples(snapshot.get("timeline", ()))
