"""Deterministic sim-time time-series telemetry (``telemetry.jsonl``).

Counters and manifests show a run's *totals*; traces show *per-call
causality*.  This module adds the third axis — *behaviour over time*:
shard registration ramps, spill throughput, backpressure queue depth,
repair-vs-rebuild rates.  The design constraints mirror the trace layer:

- **Sim-time determinism.**  Every sample is stamped with a timestamp the
  caller supplies from a virtual clock (``Simulator.now_ms``,
  ``LoopbackHub.now_ms``), never the wall clock, so same-seed runs emit
  byte-identical ``telemetry.jsonl``.  Sample values that are *inherently*
  machine timings (stage seconds, rows/s, peak RSS, per-chunk wall times)
  are flagged ``"wall": true`` and excluded from the byte-stability
  contract; sim-driven runs (chaos, soak, loopback demos) emit only
  deterministic samples so CI can byte-diff their full files.
- **Deterministic byte order.**  Records buffer in memory and are written
  once at run close, sorted by ``(t_ms, series, tags)`` with insertion
  order breaking ties, in canonical JSON (sorted keys, no spaces).
- **Fork safety.**  A forked worker's samples ride home inside the same
  snapshot dict the metrics registry already returns through
  :func:`repro.obs.collect_forked_child`; the parent merges them in
  ``pool.map`` order, which is deterministic.
- **Zero cost when off.**  :data:`NULL_TIMELINE` absorbs every call; the
  module-level ``repro.obs.timeline()`` hook returns it when no run is
  active.

:class:`WindowSampler` derives a fixed sample cadence from the virtual
clock: watches registered on counters emit per-window deltas, gauges and
callables emit current values, histograms emit a chosen quantile — all at
exact multiples of the cadence, so the sample grid itself is a pure
function of the clock.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.registry import Counter, Gauge, Histogram

__all__ = [
    "TELEMETRY_FILENAME",
    "TELEMETRY_SCHEMA_VERSION",
    "NULL_TIMELINE",
    "TimeSeries",
    "WindowSampler",
    "load_telemetry_file",
    "validate_telemetry_records",
]

#: Bump when the telemetry JSONL record semantics change.
TELEMETRY_SCHEMA_VERSION = 1

#: Canonical file name inside an observability directory.
TELEMETRY_FILENAME = "telemetry.jsonl"

#: Default sample cadence (sim milliseconds) for :class:`WindowSampler`.
DEFAULT_CADENCE_MS = 1000.0


def _json_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _canonical_value(value):
    """Round floats so equal computations render identically."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return None
        return round(value, 6)
    return value


class TimeSeries:
    """An in-memory buffer of timeline samples, written at run close.

    ``sample()`` is the whole write API: a series name, a virtual-clock
    timestamp, a numeric value, and optional string tags.  Pass
    ``wall=True`` for values derived from machine time — they stay in the
    file but are excluded from the byte-stability contract (and callers
    should stamp them with whatever monotone t_ms is convenient).
    """

    __slots__ = ("cadence_ms", "_samples", "_seq")

    def __init__(self, cadence_ms: float = DEFAULT_CADENCE_MS) -> None:
        self.cadence_ms = float(cadence_ms)
        self._samples: List[Tuple[float, str, str, int, dict]] = []
        self._seq = 0

    def __bool__(self) -> bool:  # mirrors NULL_TIMELINE's falsiness contract
        return True

    # -- write side --------------------------------------------------------

    def sample(
        self,
        series: str,
        t_ms: float,
        value,
        wall: bool = False,
        **tags: str,
    ) -> None:
        record = {
            "kind": "sample",
            "series": series,
            "t_ms": round(float(t_ms), 3),
            "value": _canonical_value(value),
        }
        if tags:
            record["tags"] = {k: str(v) for k, v in sorted(tags.items())}
        if wall:
            record["wall"] = True
        key = _json_line(record.get("tags", {}))
        self._samples.append((record["t_ms"], series, key, self._seq, record))
        self._seq += 1

    # -- fork fan-out ------------------------------------------------------

    def snapshot(self) -> List[dict]:
        """The buffered records, in deterministic output order."""
        return [entry[4] for entry in sorted(self._samples, key=lambda e: e[:4])]

    def merge_samples(self, records: Sequence[dict]) -> None:
        """Absorb a child's :meth:`snapshot` (fork-safe aggregation)."""
        for record in records:
            if record.get("kind") != "sample":
                continue
            tags = record.get("tags", {})
            self.sample(
                record["series"],
                record["t_ms"],
                record["value"],
                wall=bool(record.get("wall")),
                **tags,
            )

    # -- read side ---------------------------------------------------------

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def series_names(self) -> List[str]:
        return sorted({entry[1] for entry in self._samples})

    def write(self, path: Union[str, Path]) -> Tuple[Path, int]:
        """Write header + sorted samples as canonical JSONL."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "schema": TELEMETRY_SCHEMA_VERSION,
            "cadence_ms": self.cadence_ms,
        }
        lines = [_json_line(header)]
        lines.extend(_json_line(record) for record in self.snapshot())
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path, len(self._samples)


class _NullTimeline:
    """Falsy no-op stand-in when no run is active."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def sample(self, series, t_ms, value, wall=False, **tags) -> None:
        pass


NULL_TIMELINE = _NullTimeline()


class WindowSampler:
    """Emit registered watches at a fixed cadence of a virtual clock.

    The sample grid is ``start_ms + k * cadence_ms`` for integer ``k >= 1``
    — a pure function of the clock, never of host speed.  Call
    :meth:`advance` from any periodic hook (a maintenance tick, a
    scheduled sim event); every grid point passed since the last call is
    emitted, so irregular advance() calls still produce a regular grid.
    """

    __slots__ = ("timeline", "cadence_ms", "_next_ms", "_watches", "_last_counts")

    def __init__(
        self,
        timeline: TimeSeries,
        cadence_ms: float = DEFAULT_CADENCE_MS,
        start_ms: float = 0.0,
    ) -> None:
        if cadence_ms <= 0:
            raise ValueError(f"cadence_ms must be positive, got {cadence_ms}")
        self.timeline = timeline
        self.cadence_ms = float(cadence_ms)
        self._next_ms = float(start_ms) + self.cadence_ms
        #: (series, emit(t_ms) -> None) in registration order
        self._watches: List[Tuple[str, Callable[[float], None]]] = []
        self._last_counts: Dict[int, float] = {}

    # -- watch registration ------------------------------------------------

    def watch_counter(self, series: str, counter: Counter, **tags: str) -> None:
        """Emit the counter's per-window delta (a windowed rate)."""
        slot = len(self._watches)
        self._last_counts[slot] = counter.value

        def emit(t_ms: float) -> None:
            delta = counter.value - self._last_counts[slot]
            self._last_counts[slot] = counter.value
            self.timeline.sample(series, t_ms, delta, **tags)

        self._watches.append((series, emit))

    def watch_gauge(self, series: str, gauge: Gauge, **tags: str) -> None:
        def emit(t_ms: float) -> None:
            if gauge.value is not None:
                self.timeline.sample(series, t_ms, gauge.value, **tags)

        self._watches.append((series, emit))

    def watch_histogram(
        self, series: str, histogram: Histogram, q: float = 0.95, **tags: str
    ) -> None:
        def emit(t_ms: float) -> None:
            value = histogram.quantile(q)
            if value is not None:
                self.timeline.sample(series, t_ms, value, **tags)

        self._watches.append((series, emit))

    def watch(self, series: str, fn: Callable[[], Optional[float]], **tags: str) -> None:
        """Emit ``fn()`` each window (skipped when it returns None)."""

        def emit(t_ms: float) -> None:
            value = fn()
            if value is not None:
                self.timeline.sample(series, t_ms, value, **tags)

        self._watches.append((series, emit))

    # -- clock -------------------------------------------------------------

    def advance(self, now_ms: float) -> int:
        """Emit every grid point passed up to ``now_ms``; returns count."""
        emitted = 0
        while self._next_ms <= now_ms:
            t_ms = self._next_ms
            for _series, emit in self._watches:
                emit(t_ms)
            self._next_ms += self.cadence_ms
            emitted += 1
        return emitted


# -- file side -------------------------------------------------------------

_SAMPLE_FIELDS = ("kind", "series", "t_ms", "value")


def validate_telemetry_records(records: Sequence[dict]) -> List[str]:
    """Return human-readable problems; empty means the file conforms."""
    problems: List[str] = []
    if not records:
        return ["telemetry file is empty (expected a header record)"]
    header = records[0]
    if header.get("kind") != "header":
        problems.append("first record must be the header")
    elif header.get("schema") != TELEMETRY_SCHEMA_VERSION:
        problems.append(
            f"schema must be {TELEMETRY_SCHEMA_VERSION}, got {header.get('schema')!r}"
        )
    previous: Optional[Tuple[float, str]] = None
    for index, record in enumerate(records[1:], start=2):
        kind = record.get("kind")
        if kind != "sample":
            problems.append(f"line {index}: unknown record kind {kind!r}")
            continue
        for field in _SAMPLE_FIELDS:
            if field not in record:
                problems.append(f"line {index}: missing field {field!r}")
        extra = set(record) - set(_SAMPLE_FIELDS) - {"tags", "wall"}
        if extra:
            problems.append(f"line {index}: unexpected fields {sorted(extra)}")
        series = record.get("series")
        t_ms = record.get("t_ms")
        if isinstance(t_ms, (int, float)) and isinstance(series, str):
            key = (float(t_ms), series)
            if previous is not None and key < previous:
                problems.append(f"line {index}: samples out of (t_ms, series) order")
            previous = key
    return problems


def load_telemetry_file(path: Union[str, Path]) -> List[dict]:
    """Read and validate a ``telemetry.jsonl`` file."""
    records = [
        json.loads(line)
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    problems = validate_telemetry_records(records)
    if problems:
        raise ValueError(f"invalid telemetry file {path}: " + "; ".join(problems))
    return records
