"""Per-run manifests: what produced a result directory, exactly.

A run manifest is a single JSON document written next to a run's other
outputs (``run_manifest.json`` under the observability directory) that
records everything needed to account for — and re-produce — the run:

- the command and argv that ran;
- the canonical scenario config hash (the same content hash
  :mod:`repro.storage.cache` keys artifacts on), seed and scale;
- wall-clock timings, resolved worker fan-out, cache hit/miss counts;
- the final snapshot of every metric instrument.

The schema is versioned and validated by hand (zero dependencies):
:func:`validate_manifest` returns a list of problems, empty when the
document conforms.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "load_manifest",
    "validate_manifest",
    "write_manifest",
]

#: Bump when manifest semantics change; validators reject other versions.
#: v2: histogram snapshots carry p50/p95/p99 estimates; ``traces_file``
#: and ``traces_written`` record the run's causal-trace output.
#: v3: top-level ``parallel`` block (per-chunk sizes/timings and resolved
#: worker count of the run's parallel matrix build, null for serial runs)
#: replaces reading ``matrix.LAST_PARALLEL_STATS`` out of the process.
#: v4: optional top-level ``soak`` block — the churn soak's gate verdicts
#: (steady-state registry, directory convergence, staleness bound,
#: terminal calls) plus the directory/repair accounting behind them.
#: v5: optional top-level ``telemetry`` block (time-series output file,
#: sample/series counts, cadence, reservoir drops); histogram snapshots
#: carry a bounded raw-sample reservoir (``samples``/``dropped``).
MANIFEST_SCHEMA_VERSION = 5

#: Canonical file name of a run manifest inside an observability directory.
MANIFEST_FILENAME = "run_manifest.json"

_NoneType = type(None)

#: field name -> (accepted types, required).  ``dict``-typed fields are
#: checked one level deep where it matters (see ``validate_manifest``).
MANIFEST_SCHEMA: Dict[str, Tuple[tuple, bool]] = {
    "schema": ((int,), True),
    "run_id": ((str,), True),
    "command": ((str,), True),
    "argv": ((list,), True),
    "started_at": ((str,), True),
    "wall_seconds": ((int, float), True),
    "seed": ((int, _NoneType), True),
    "scale": ((str, _NoneType), True),
    "config_key": ((str, _NoneType), True),
    "workers": ((int, _NoneType), True),
    "parallel": ((dict, _NoneType), False),
    "soak": ((dict, _NoneType), False),
    "telemetry": ((dict, _NoneType), False),
    "cache": ((dict,), True),
    "network": ((dict,), False),
    "counters": ((dict,), True),
    "gauges": ((dict,), True),
    "histograms": ((dict,), True),
    "events_file": ((str, _NoneType), True),
    "events_written": ((int,), True),
    "traces_file": ((str, _NoneType), True),
    "traces_written": ((int,), True),
    "annotations": ((dict,), False),
}

#: Required members of each ``histograms`` entry (quantiles may be null
#: on empty histograms, hence no type constraint beyond presence).
_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "p50", "p95", "p99", "buckets")

#: Required integer members of the ``cache`` sub-document.
_CACHE_FIELDS = (
    "scenario_hits",
    "scenario_misses",
    "close_set_hits",
    "close_set_misses",
)

#: Required integer members of the optional ``network`` sub-document.
_NETWORK_FIELDS = (
    "messages_dropped",
    "request_timeouts",
)

#: Required members of the optional ``soak`` sub-document: the gate
#: verdicts are booleans, the rest is accounting the gates summarize.
_SOAK_BOOL_FIELDS = (
    "registry_bounded",
    "directory_converged",
    "staleness_bounded",
    "calls_terminal",
)
_SOAK_FIELDS = _SOAK_BOOL_FIELDS + ("ok", "seed", "sim_minutes", "shards")

#: Required members of the optional ``telemetry`` sub-document.
_TELEMETRY_FIELDS = ("file", "samples", "series", "cadence_ms", "samples_dropped")


def validate_manifest(document: dict) -> List[str]:
    """Check a manifest document against the schema.

    Returns a list of human-readable problems; an empty list means the
    document is a valid version-``MANIFEST_SCHEMA_VERSION`` manifest.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"manifest must be an object, got {type(document).__name__}"]
    for name, (types, required) in MANIFEST_SCHEMA.items():
        if name not in document:
            if required:
                problems.append(f"missing required field {name!r}")
            continue
        value = document[name]
        if not isinstance(value, types):
            expected = "/".join(t.__name__ for t in types)
            problems.append(
                f"field {name!r} must be {expected}, got {type(value).__name__}"
            )
    for name in document:
        if name not in MANIFEST_SCHEMA:
            problems.append(f"unknown field {name!r}")
    if document.get("schema") != MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"schema must be {MANIFEST_SCHEMA_VERSION}, got {document.get('schema')!r}"
        )
    cache = document.get("cache")
    if isinstance(cache, dict):
        for field in _CACHE_FIELDS:
            if not isinstance(cache.get(field), int):
                problems.append(f"cache.{field} must be an integer")
    network = document.get("network")
    if isinstance(network, dict):
        for field in _NETWORK_FIELDS:
            if not isinstance(network.get(field), int):
                problems.append(f"network.{field} must be an integer")
    soak = document.get("soak")
    if isinstance(soak, dict):
        for field in _SOAK_FIELDS:
            if field not in soak:
                problems.append(f"soak missing field {field!r}")
        for field in _SOAK_BOOL_FIELDS + ("ok",):
            if field in soak and not isinstance(soak[field], bool):
                problems.append(f"soak.{field} must be a boolean")
    telemetry = document.get("telemetry")
    if isinstance(telemetry, dict):
        for field in _TELEMETRY_FIELDS:
            if field not in telemetry:
                problems.append(f"telemetry missing field {field!r}")
        for field in ("samples", "series", "samples_dropped"):
            if field in telemetry and not isinstance(telemetry[field], int):
                problems.append(f"telemetry.{field} must be an integer")
    counters = document.get("counters")
    if isinstance(counters, dict):
        for key, value in counters.items():
            if not isinstance(value, int):
                problems.append(f"counter {key!r} must be an integer")
    histograms = document.get("histograms")
    if isinstance(histograms, dict):
        for key, data in histograms.items():
            if not isinstance(data, dict):
                problems.append(f"histogram {key!r} must be an object")
                continue
            for field in _HISTOGRAM_FIELDS:
                if field not in data:
                    problems.append(f"histogram {key!r} missing field {field!r}")
    return problems


def write_manifest(path: Union[str, Path], document: dict) -> Path:
    """Validate and write a manifest document (indented, sorted keys)."""
    problems = validate_manifest(document)
    if problems:
        raise ValueError("invalid run manifest: " + "; ".join(problems))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def load_manifest(path: Union[str, Path]) -> dict:
    """Read and validate a manifest document from disk."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_manifest(document)
    if problems:
        raise ValueError(f"invalid run manifest at {path}: " + "; ".join(problems))
    return document
