"""Metric instruments and the registry that owns them.

Three instrument kinds, mirroring the paper's accounting needs:

- :class:`Counter` — monotonically increasing totals (probe messages,
  sessions run, cache hits);
- :class:`Gauge` — last-written values (cluster count, worker fan-out);
- :class:`Histogram` — value distributions with power-of-two buckets
  (span durations, per-chunk wall times).

A :class:`MetricsRegistry` creates instruments on demand by name and can
render itself to a plain-dict :meth:`~MetricsRegistry.snapshot` (what the
run manifest embeds) or absorb another registry's snapshot with
:meth:`~MetricsRegistry.merge_snapshot` — the primitive behind fork-safe
aggregation: each pool worker accumulates into a fresh child registry and
the parent merges the returned snapshots, so counters sum exactly once.

Everything here is zero-dependency plain Python; instruments use
``__slots__`` and do no locking (the repro is single-threaded per
process; cross-process aggregation goes through snapshots).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "RESERVOIR_SIZE"]


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written scalar (not aggregated over time)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


#: Histogram bucket upper bounds are powers of two starting here; with 40
#: buckets the range spans ~1 µs to ~15 000 s when observing seconds.
_FIRST_BUCKET = 2.0 ** -20
_BUCKET_COUNT = 40

#: Raw-sample retention cap per histogram.  Beyond this, observations
#: displace reservoir entries (or are dropped) deterministically — no
#: histogram ever grows without bound on a long soak.
RESERVOIR_SIZE = 512


def _reservoir_slot(n: int) -> int:
    """Deterministic pseudo-random slot in ``[0, n)`` for observation n.

    A fixed multiplicative mix (Knuth's 2654435761) stands in for
    ``random.randrange`` so same-seed runs keep byte-identical state —
    statistical uniformity is traded for reproducibility.
    """
    x = (n * 2654435761) & 0xFFFFFFFF
    x ^= x >> 16
    return x % n


class Histogram:
    """A value distribution: count / sum / min / max plus log2 buckets.

    Bucket ``i`` counts observations in ``(2**(i-21), 2**(i-20)]``; the
    final bucket is a catch-all for anything larger.  Quantiles come from
    the buckets; a bounded deterministic reservoir additionally retains up
    to :data:`RESERVOIR_SIZE` raw samples (``dropped`` counts the ones it
    had to let go, surfaced as the ``telemetry.samples_dropped`` counter).
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets",
                 "samples", "dropped", "_on_drop")

    def __init__(
        self, name: str, on_drop: Optional[Callable[[int], None]] = None
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * _BUCKET_COUNT
        self.samples: List[float] = []
        self.dropped = 0
        self._on_drop = on_drop

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[_bucket_index(value)] += 1
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(value)
        else:
            slot = _reservoir_slot(self.count)
            if slot < RESERVOIR_SIZE:
                self.samples[slot] = value
            self._drop()

    def _drop(self, amount: int = 1) -> None:
        self.dropped += amount
        if self._on_drop is not None:
            self._on_drop(amount)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the covering bucket's bounds, with
        the result clamped to the observed ``[min, max]`` — so single
        observations report themselves exactly and estimates can never
        leave the observed range.  Resolution is the bucket width (a
        factor of two), which is plenty for spotting tail blow-ups.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            if not bucket:
                continue
            if cumulative + bucket >= rank:
                lower = 0.0 if index == 0 else _FIRST_BUCKET * 2.0 ** (index - 1)
                upper = _FIRST_BUCKET * 2.0 ** index
                fraction = (rank - cumulative) / bucket
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket
        return self.max


def _bucket_index(value: float) -> int:
    if value <= _FIRST_BUCKET:
        return 0
    index = int(math.ceil(math.log2(value / _FIRST_BUCKET)))
    return min(index, _BUCKET_COUNT - 1)


class MetricsRegistry:
    """Creates and owns named instruments; snapshot/merge for fan-out."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (create on first use) ---------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, on_drop=self._count_dropped
            )
        return instrument

    def _count_dropped(self, amount: int) -> None:
        """Reservoir truncation is never silent: it shows up as a counter."""
        self.counter("telemetry.samples_dropped").inc(amount)

    # -- read side ---------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 when it never fired)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "p50": h.quantile(0.50),
                    "p95": h.quantile(0.95),
                    "p99": h.quantile(0.99),
                    "buckets": list(h.buckets),
                    "samples": list(h.samples),
                    "dropped": h.dropped,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    # -- merge (fork fan-out) ----------------------------------------------

    def merge_snapshot(self, snapshot: dict) -> None:
        """Absorb a child registry's snapshot.

        Counters and histogram contents sum; gauges take the child's
        value only when the parent never wrote one (a child gauge is a
        report of shared state, not an increment).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if gauge.value is None:
                gauge.value = value
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            count = data.get("count", 0)
            if not count:
                continue
            histogram.count += count
            histogram.total += data.get("sum", 0.0)
            for bound_name in ("min", "max"):
                value = data.get(bound_name)
                if value is None:
                    continue
                current = getattr(histogram, bound_name)
                better = (
                    value
                    if current is None
                    else (min if bound_name == "min" else max)(current, value)
                )
                setattr(histogram, bound_name, better)
            for index, bucket in enumerate(data.get("buckets", ())):
                if index < len(histogram.buckets):
                    histogram.buckets[index] += bucket
            dropped = data.get("dropped", 0)
            if dropped:
                histogram.dropped += dropped
            histogram.samples.extend(data.get("samples", ()))
            overflow = len(histogram.samples) - RESERVOIR_SIZE
            if overflow > 0:
                # Deterministic truncation: keep the head.  The parent's
                # shared counter is bumped here (the child already counted
                # its own drops before snapshotting).
                del histogram.samples[RESERVOIR_SIZE:]
                histogram._drop(overflow)
