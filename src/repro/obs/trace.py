"""Per-call causal tracing: propagated contexts and ``traces.jsonl``.

The run-wide metrics of :mod:`repro.obs` answer *how much* (probe
totals, setup-time histograms); they cannot answer the paper's Section 5
questions, which are *per-call causal*: where did **this** call's setup
time go, which AS absorbed **its** probes, how often did **its** relay
bounce.  This module adds the missing layer: a :class:`Tracer` that
threads a trace context through the runtime's state machines and writes
one schema-versioned JSON line per finished span or point event to
``traces.jsonl`` beside the run manifest.

**Deterministic by construction.**  Identifiers derive from simulated
time and per-run sequence counters — never wall clock, PIDs or random
state — and every timestamp in a record is simulated milliseconds.  Two
runs with the same seeds therefore produce byte-identical trace files
(chaos CI diffs them), and enabling tracing never perturbs results: the
tracer only observes.

**Off by default, free when off.**  Instrumented code holds a
:class:`TraceSpan`; with no active tracer it holds the shared
:data:`NULL_TRACE_SPAN`, which is falsy and whose ``child``/``point``/
``end`` are no-ops, so propagation costs an attribute call and a truth
test.  Activate through ``obs.observe(trace=True)`` or the CLI's
``--trace`` flag.

The record vocabulary (one JSON object per line):

- line 1 — header: ``{"kind": "header", "schema": 1}``;
- spans — ``{"kind": "span", "trace": …, "span": …, "parent": …,
  "name": …, "start_ms": …, "end_ms": …, "attrs": {…}}`` — emitted when
  the span *ends*, so a parent may appear after its children;
- points — like spans but with a single ``at_ms`` timestamp.

:func:`validate_trace_records` checks structure and referential
integrity (every ``parent`` resolves to a span of the same trace);
:func:`load_trace_file` reads and validates a file in one step.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Callable, Dict, List, Optional, Union

__all__ = [
    "NULL_TRACER",
    "NULL_TRACE_SPAN",
    "TRACES_FILENAME",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "TraceSpan",
    "load_trace_file",
    "load_trace_files",
    "validate_trace_records",
]

#: Bump when trace-record semantics change; validators reject others.
TRACE_SCHEMA_VERSION = 1

#: Canonical trace file name inside an observability directory.
TRACES_FILENAME = "traces.jsonl"


def _json_line(record: dict) -> str:
    """Canonical byte-stable serialization of one trace record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)


class TraceSpan:
    """One live span of a trace; the unit of context propagation.

    Created through :meth:`Tracer.begin` (roots) or :meth:`child`; the
    record is emitted when :meth:`end` is called.  A span that is never
    ended is never written — the analyzer treats absence as "the run
    stopped before this completed".
    """

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "start_ms", "attrs", "ended", "remote")

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start_ms: float,
        attrs: dict,
        remote: bool = False,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.attrs = attrs
        self.ended = False
        self.remote = remote

    def __bool__(self) -> bool:
        return True

    def child(self, name: str, at_ms: float, **attrs) -> "TraceSpan":
        """Open a child span of this one (same trace)."""
        return self._tracer._span(self.trace_id, self.span_id, name, at_ms, attrs)

    def point(self, name: str, at_ms: float, **attrs) -> None:
        """Emit an instantaneous event parented to this span."""
        self._tracer._emit({
            "kind": "point",
            "trace": self.trace_id,
            "span": self._tracer._next_span_id(),
            "parent": self.span_id,
            "name": name,
            "at_ms": round(at_ms, 3),
            "attrs": attrs,
        })

    def end(self, at_ms: float, **attrs) -> None:
        """Close the span; merges ``attrs`` and writes the record."""
        if self.ended:
            return
        self.ended = True
        merged = dict(self.attrs)
        merged.update(attrs)
        record = {
            "kind": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ms": round(self.start_ms, 3),
            "end_ms": round(at_ms, 3),
            "attrs": merged,
        }
        if self.remote:
            # The parent span lives in another process's trace file; the
            # validator only checks its trace ownership once the files
            # are merged (see load_trace_files).
            record["remote"] = True
        self._tracer._emit(record)


class _NullTraceSpan:
    """The span held when tracing is off: falsy, every method free."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    ended = True

    def __bool__(self) -> bool:
        return False

    def child(self, name: str, at_ms: float = 0.0, **attrs) -> "_NullTraceSpan":
        return self

    def point(self, name: str, at_ms: float = 0.0, **attrs) -> None:
        pass

    def end(self, at_ms: float = 0.0, **attrs) -> None:
        pass


#: Shared no-op span (stateless; safe to hold, propagate and "end").
NULL_TRACE_SPAN = _NullTraceSpan()


class _Scope:
    """Context manager swapping the tracer's ambient parent span."""

    __slots__ = ("_tracer", "_span", "_previous")

    def __init__(self, tracer: "Tracer", span) -> None:
        self._tracer = tracer
        self._span = span
        self._previous = None

    def __enter__(self):
        self._previous = self._tracer._ambient
        self._tracer._ambient = self._span
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._ambient = self._previous
        return False


class Tracer:
    """Owns trace identifiers and the ``traces.jsonl`` stream.

    ``clock`` supplies the *current simulated time* for instrumentation
    sites that have no simulator handle of their own (close-set builds
    triggered mid-call); whoever drives a simulator points it at
    ``sim.now_ms`` while running.  It must never be wall clock.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.records: List[dict] = []
        self.records_written = 0
        self.clock: Callable[[], float] = lambda: 0.0
        self.node = ""
        self._trace_seq = 0
        self._span_seq = 0
        self._ambient = None
        self._handle: Optional[IO[str]] = None
        self._emit({"kind": "header", "schema": TRACE_SCHEMA_VERSION})

    def set_node(self, node: str) -> None:
        """Prefix span ids with a per-process node tag.

        Cross-process runs (``serve`` in one process, ``dial`` in
        another) each own an independent span-id sequence; distinct node
        prefixes keep ids unique when the files are merged into one
        causal tree by :func:`load_trace_files`.
        """
        self.node = f"{node}-" if node else ""

    def __bool__(self) -> bool:
        return True

    # -- context -----------------------------------------------------------

    def now(self) -> float:
        """The current simulated time according to :attr:`clock`."""
        return self.clock()

    @property
    def active(self):
        """The ambient parent span set by :meth:`scope` (or the no-op)."""
        ambient = self._ambient
        return ambient if ambient is not None else NULL_TRACE_SPAN

    def scope(self, span) -> _Scope:
        """Make ``span`` the ambient parent for nested instrumentation.

        Used where explicit propagation would mean threading a span
        through many analytic call layers (close-set construction under
        relay selection)::

            with tracer.scope(select_span):
                ...  # close_set.build spans parent to select_span
        """
        return _Scope(self, span)

    # -- span creation -----------------------------------------------------

    def begin(self, name: str, at_ms: float, **attrs) -> TraceSpan:
        """Open a new root span (a fresh ``trace_id``).

        The trace id embeds the start time (simulated µs) and a per-run
        sequence number, so ids are unique, ordered and byte-stable.
        """
        self._trace_seq += 1
        trace_id = f"{self.node}{self._trace_seq:04x}.{int(round(at_ms * 1000)):x}"
        return self._span(trace_id, None, name, at_ms, attrs)

    def continue_trace(
        self, trace_id: str, parent_span_id: Optional[str], name: str,
        at_ms: float, **attrs,
    ) -> TraceSpan:
        """Open a span continuing a trace begun in *another* process.

        The context (trace id + parent span id) arrived over the wire
        (see the codec's trace extension); the resulting span joins the
        remote trace and is flagged ``remote`` so single-file validation
        does not demand the foreign parent be present locally.
        """
        return TraceSpan(
            self, trace_id, self._next_span_id(), parent_span_id, name,
            at_ms, attrs, remote=True,
        )

    def _span(
        self, trace_id: str, parent_id: Optional[str], name: str,
        at_ms: float, attrs: dict,
    ) -> TraceSpan:
        return TraceSpan(
            self, trace_id, self._next_span_id(), parent_id, name, at_ms, attrs
        )

    def _next_span_id(self) -> str:
        self._span_seq += 1
        return f"{self.node}{self._span_seq:06x}"

    # -- emission ----------------------------------------------------------

    def _emit(self, record: dict) -> None:
        self.records.append(record)
        self.records_written += 1
        if self.path is None:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        self._handle.write(_json_line(record) + "\n")

    def flush(self) -> None:
        """Push buffered lines to disk (the file stays open)."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _NullTracer:
    """Stand-in when no tracing run is active: falsy, everything free.

    No ``__slots__``: :class:`_Scope` writes ``_ambient`` even over the
    null tracer, and a scoped span over a dead tracer should stay inert.
    """

    path = None
    records: List[dict] = []
    records_written = 0
    _ambient = None
    clock: Callable[[], float] = staticmethod(lambda: 0.0)

    def __bool__(self) -> bool:
        return False

    def now(self) -> float:
        return 0.0

    @property
    def active(self) -> _NullTraceSpan:
        return NULL_TRACE_SPAN

    def scope(self, span) -> _Scope:
        return _Scope(self, span)

    def begin(self, name: str, at_ms: float = 0.0, **attrs) -> _NullTraceSpan:
        return NULL_TRACE_SPAN

    def continue_trace(
        self, trace_id, parent_span_id, name, at_ms: float = 0.0, **attrs
    ) -> _NullTraceSpan:
        return NULL_TRACE_SPAN

    def set_node(self, node: str) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared no-op tracer returned by ``obs.tracer()`` when tracing is off.
NULL_TRACER = _NullTracer()


# -- validation and loading --------------------------------------------------

_SPAN_FIELDS = {
    "kind": str, "trace": str, "span": str, "name": str, "attrs": dict,
    "start_ms": (int, float), "end_ms": (int, float),
}
_POINT_FIELDS = {
    "kind": str, "trace": str, "span": str, "name": str, "attrs": dict,
    "at_ms": (int, float),
}


def validate_trace_records(records: List[dict]) -> List[str]:
    """Check a sequence of trace records against the schema.

    Returns human-readable problems (empty list = valid): header first,
    field shapes per kind, unique span ids, and referential integrity —
    every ``parent`` must name a span record of the same trace.
    """
    problems: List[str] = []
    if not records:
        return ["empty trace: missing header record"]
    header = records[0]
    if not isinstance(header, dict) or header.get("kind") != "header":
        problems.append("first record must be the header")
    elif header.get("schema") != TRACE_SCHEMA_VERSION:
        problems.append(
            f"schema must be {TRACE_SCHEMA_VERSION}, got {header.get('schema')!r}"
        )
    body = records[1:] if isinstance(header, dict) and header.get("kind") == "header" else records

    span_trace: Dict[str, str] = {}
    seen_ids: set = set()
    for index, record in enumerate(body):
        where = f"record {index + 1}"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = record.get("kind")
        if kind not in ("span", "point"):
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        fields = _SPAN_FIELDS if kind == "span" else _POINT_FIELDS
        for name, types in fields.items():
            if name not in record:
                problems.append(f"{where}: missing field {name!r}")
            elif not isinstance(record[name], types):
                problems.append(f"{where}: field {name!r} has wrong type")
        extra = set(record) - set(fields) - {"parent", "remote"}
        if extra:
            problems.append(f"{where}: unknown fields {sorted(extra)}")
        if "remote" in record and not isinstance(record["remote"], bool):
            problems.append(f"{where}: field 'remote' must be a boolean")
        parent = record.get("parent")
        if parent is not None and not isinstance(parent, str):
            problems.append(f"{where}: field 'parent' must be a string or null")
        span_id = record.get("span")
        if isinstance(span_id, str):
            if span_id in seen_ids:
                problems.append(f"{where}: duplicate span id {span_id!r}")
            seen_ids.add(span_id)
            if kind == "span" and isinstance(record.get("trace"), str):
                span_trace[span_id] = record["trace"]
        if kind == "span":
            start, end = record.get("start_ms"), record.get("end_ms")
            if (
                isinstance(start, (int, float))
                and isinstance(end, (int, float))
                and end < start
            ):
                problems.append(f"{where}: end_ms {end} before start_ms {start}")

    # Referential integrity (spans are emitted at end time, so parents
    # may legitimately appear after their children — hence two passes).
    for index, record in enumerate(body):
        if not isinstance(record, dict):
            continue
        parent = record.get("parent")
        if parent is None or not isinstance(parent, str):
            continue
        where = f"record {index + 1}"
        owner = span_trace.get(parent)
        if owner is None:
            if record.get("remote"):
                # A continuation span: its parent lives in the peer
                # process's file.  Merging the files (load_trace_files)
                # restores the full referential check.
                continue
            problems.append(f"{where}: parent {parent!r} is not a recorded span")
        elif owner != record.get("trace"):
            problems.append(
                f"{where}: parent {parent!r} belongs to trace {owner!r}, "
                f"not {record.get('trace')!r}"
            )
    return problems


def load_trace_file(path: Union[str, Path]) -> List[dict]:
    """Read and validate ``traces.jsonl``; returns the record list."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    records = [json.loads(line) for line in lines if line.strip()]
    problems = validate_trace_records(records)
    if problems:
        raise ValueError(f"invalid trace file {path}: " + "; ".join(problems[:5]))
    return records


def load_trace_files(paths: List[Union[str, Path]]) -> List[dict]:
    """Merge several processes' trace files into one validated record set.

    A cross-process run (``serve`` + ``dial``) writes one file per
    process; wire-propagated trace contexts mean a span's parent may be
    recorded in a *different* file.  This reads every file, keeps a
    single header, concatenates the bodies in argument order, and
    validates the merged whole — so referential integrity is checked
    across process boundaries, yielding one connected causal tree.
    """
    if not paths:
        raise ValueError("load_trace_files needs at least one path")
    merged: List[dict] = []
    for path in paths:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines if line.strip()]
        if not records or records[0].get("kind") != "header":
            raise ValueError(f"invalid trace file {path}: missing header record")
        if records[0].get("schema") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"invalid trace file {path}: schema "
                f"{records[0].get('schema')!r} != {TRACE_SCHEMA_VERSION}"
            )
        if not merged:
            merged.append(records[0])
        merged.extend(records[1:])
    problems = validate_trace_records(merged)
    if problems:
        raise ValueError(
            "invalid merged trace set: " + "; ".join(problems[:5])
        )
    return merged
