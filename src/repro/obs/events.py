"""Structured JSONL event sink.

One line per event, append-only, flushed on close::

    {"t": 0.0123, "level": "info", "kind": "span", "name": "scenario.build",
     "dur_s": 1.87, "depth": 0}

``t`` is seconds since the run started (wall clock).  Levels follow the
usual ordering ``debug < info < warn``; a sink configured at ``info``
silently drops ``debug`` events, which is how high-cardinality span
streams (per-cluster close-set builds) stay cheap by default.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Optional, Union

__all__ = ["EventSink", "LOG_LEVELS"]

#: Recognised levels, least to most severe.
LOG_LEVELS = ("debug", "info", "warn")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LOG_LEVELS)}


class EventSink:
    """Writes structured events to a JSONL file, filtered by level."""

    def __init__(
        self,
        path: Union[str, Path],
        level: str = "info",
        start_time: Optional[float] = None,
    ) -> None:
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level {level!r}; choose from {LOG_LEVELS}")
        self.path = Path(path)
        self.level = level
        self._threshold = _LEVEL_RANK[level]
        self._start = time.time() if start_time is None else start_time
        self._handle: Optional[IO[str]] = None
        self.events_written = 0

    def wants(self, level: str) -> bool:
        """Whether events at ``level`` pass the configured filter."""
        return _LEVEL_RANK.get(level, 1) >= self._threshold

    def emit(self, kind: str, name: str, level: str = "info", **fields) -> None:
        """Write one event line (no-op when below the level threshold)."""
        if not self.wants(level):
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        record = {
            "t": round(time.time() - self._start, 6),
            "level": level,
            "kind": kind,
            "name": name,
        }
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=False, default=str) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
