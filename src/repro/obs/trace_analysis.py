"""Trace analysis: per-call timelines and the L1–L4 report from traces.

Everything here consumes only the records of a ``traces.jsonl`` file
(:func:`repro.obs.trace.load_trace_file`) — never live runtime state —
so the analysis works on any captured trace, the same way the paper's
Skype study worked on packet captures.  Three layers:

- **reconstruction** — :func:`build_trees` turns the flat record stream
  back into per-trace span trees (spans are emitted at *end* time, so
  children routinely precede their parents in the file);
- **per-call analysis** — :func:`analyze_calls` /
  :func:`analyze_skype_calls` distil each ASAP call (setup critical
  path, relay-pick quality, failover history) and each Skype-like
  session (probe volume, bounce count, stabilization) into flat
  summaries; :func:`fault_links` indexes injected faults by the traces
  they disrupted;
- **aggregation** — :func:`limits_report` compares the two protocols on
  the paper's four Skype limits: L1 suboptimal relay paths (chosen vs
  best-available RTT gap), L2 redundant same-AS probes, L3 slow
  stabilization and relay bounce, L4 probe-message overhead —
  :func:`render_timeline` renders one call's reconstructed history as
  indented text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CallSummary",
    "LimitsReport",
    "SkypeDirectionSummary",
    "SkypeSummary",
    "TraceNode",
    "TraceTree",
    "analyze_calls",
    "analyze_skype_calls",
    "build_trees",
    "fault_links",
    "limits_report",
    "probe_messages_by_as",
    "render_timeline",
]


# -- reconstruction ----------------------------------------------------------


@dataclass
class TraceNode:
    """One span or point record with its reconstructed children."""

    record: dict
    children: List["TraceNode"] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.record["kind"]

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def attrs(self) -> dict:
        return self.record.get("attrs", {})

    @property
    def start_ms(self) -> float:
        if self.kind == "point":
            return self.record["at_ms"]
        return self.record["start_ms"]

    @property
    def end_ms(self) -> float:
        if self.kind == "point":
            return self.record["at_ms"]
        return self.record["end_ms"]

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def find(self, name: str) -> List["TraceNode"]:
        """All descendants (and self) with the given span/point name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def first(self, name: str) -> Optional["TraceNode"]:
        nodes = self.find(name)
        return nodes[0] if nodes else None


@dataclass
class TraceTree:
    """One reconstructed trace: a root span plus any orphaned records."""

    trace_id: str
    root: Optional[TraceNode] = None
    #: Records whose parent span never ended (run stopped mid-flight).
    orphans: List[TraceNode] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.root.name if self.root is not None else "?"


def build_trees(records: List[dict]) -> Dict[str, TraceTree]:
    """Reconstruct span trees per trace, in first-appearance order.

    Two passes because spans are written at end time: children of a
    long-lived span appear in the file before their parent does.
    """
    nodes: Dict[str, TraceNode] = {}
    ordered: List[dict] = []
    for record in records:
        if record.get("kind") not in ("span", "point"):
            continue
        ordered.append(record)
        nodes[record["span"]] = TraceNode(record)

    trees: Dict[str, TraceTree] = {}
    for record in ordered:
        trace_id = record["trace"]
        tree = trees.get(trace_id)
        if tree is None:
            tree = trees[trace_id] = TraceTree(trace_id=trace_id)
        node = nodes[record["span"]]
        parent_id = record.get("parent")
        if parent_id is None:
            tree.root = node
        elif parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            tree.orphans.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start_ms, n.record["span"]))
    return trees


# -- per-call analysis -------------------------------------------------------


@dataclass
class CallSummary:
    """One ASAP call distilled from its trace."""

    trace_id: str
    caller: str
    callee: str
    outcome: str
    setup_ms: Optional[float]
    path: Optional[str]
    relay: Optional[str]
    chosen_rtt_ms: Optional[float]
    best_candidate_rtt_ms: Optional[float]
    direct_rtt_ms: Optional[float]
    failovers: int
    relay_losses: int
    #: Setup critical path: phase name -> milliseconds spent.
    phases: Dict[str, float] = field(default_factory=dict)
    #: Probe messages by AS from close-set builds nested under the call.
    probes_by_as: Dict[str, int] = field(default_factory=dict)
    probe_messages: int = 0
    #: Probes beyond the first into one AS *within a single build* (L2);
    #: cross-build repeats are amortized maintenance, not redundancy.
    same_as_duplicate_probes: int = 0

    @property
    def relay_gap_ms(self) -> Optional[float]:
        """L1: chosen relay path vs the best candidate that was known."""
        if self.chosen_rtt_ms is None or self.best_candidate_rtt_ms is None:
            return None
        return max(0.0, self.chosen_rtt_ms - self.best_candidate_rtt_ms)


def _setup_phases(root: TraceNode) -> Dict[str, float]:
    """The call-setup critical path, phase by phase.

    Ping and selection are sequential; the two close-set legs run
    concurrently (the slower one gates); two-hop queries run in parallel
    after both legs (again the slower gates) — mirroring Fig. 8's steps.
    """
    phases: Dict[str, float] = {}
    pings = root.find("setup.ping")
    if pings:
        phases["ping"] = round(sum(p.duration_ms for p in pings), 3)
    own = [n.duration_ms for n in root.find("setup.close_set")
           if n.attrs.get("leg") == "own"]
    peer = [n.duration_ms for n in root.find("setup.close_set")
            if n.attrs.get("leg") == "peer"]
    if own or peer:
        phases["close_set"] = round(max(sum(own), sum(peer)), 3)
    two_hop = [n.duration_ms for n in root.find("setup.two_hop")]
    if two_hop:
        phases["two_hop"] = round(max(two_hop), 3)
    return phases


def analyze_calls(trees: Dict[str, TraceTree]) -> List[CallSummary]:
    """One :class:`CallSummary` per complete ASAP ``call`` trace."""
    summaries: List[CallSummary] = []
    for tree in trees.values():
        root = tree.root
        if root is None or root.name != "call":
            continue
        pick = root.first("setup.relay_pick")
        done = root.first("setup.done")
        media_spans = root.find("media")
        media = media_spans[0] if media_spans else None
        probes_by_as: Dict[str, int] = {}
        probe_messages = 0
        duplicates = 0
        for build in root.find("close_set.build"):
            probe_messages += build.attrs.get("probe_messages", 0)
            for asn, count in build.attrs.get("probes_by_as", {}).items():
                probes_by_as[asn] = probes_by_as.get(asn, 0) + count
                if count > 2:  # two messages per probe
                    duplicates += count // 2 - 1
        summaries.append(
            CallSummary(
                trace_id=tree.trace_id,
                caller=root.attrs.get("caller", "?"),
                callee=root.attrs.get("callee", "?"),
                outcome=root.attrs.get("outcome", "pending"),
                setup_ms=done.attrs.get("setup_ms") if done is not None else None,
                path=done.attrs.get("path") if done is not None else None,
                relay=done.attrs.get("relay") if done is not None else None,
                chosen_rtt_ms=pick.attrs.get("chosen_rtt_ms") if pick else None,
                best_candidate_rtt_ms=(
                    pick.attrs.get("best_candidate_rtt_ms") if pick else None
                ),
                direct_rtt_ms=pick.attrs.get("direct_rtt_ms") if pick else None,
                failovers=(
                    media.attrs.get("failovers", 0) if media is not None
                    else 0
                ),
                relay_losses=len(root.find("media.relay_lost")),
                phases=_setup_phases(root),
                probes_by_as=probes_by_as,
                probe_messages=probe_messages,
                same_as_duplicate_probes=duplicates,
            )
        )
    return summaries


@dataclass
class SkypeDirectionSummary:
    """One direction of a Skype-like session."""

    direction: str
    probes: int
    bounces: int
    stabilized_ms: Optional[float]
    final_rtt_ms: Optional[float]
    best_path_rtt_ms: Optional[float]
    same_as_duplicate_probes: int
    probes_by_as: Dict[str, int] = field(default_factory=dict)

    @property
    def relay_gap_ms(self) -> Optional[float]:
        """L1: the path kept at session end vs the best one ever probed."""
        if self.final_rtt_ms is None or self.best_path_rtt_ms is None:
            return None
        return max(0.0, self.final_rtt_ms - self.best_path_rtt_ms)


@dataclass
class SkypeSummary:
    """One Skype-like session distilled from its trace."""

    trace_id: str
    session_id: int
    caller: str
    callee: str
    direct_rtt_ms: Optional[float]
    directions: List[SkypeDirectionSummary] = field(default_factory=list)

    @property
    def probes(self) -> int:
        return sum(d.probes for d in self.directions)

    @property
    def bounces(self) -> int:
        return sum(d.bounces for d in self.directions)

    @property
    def stabilized_ms(self) -> Optional[float]:
        values = [d.stabilized_ms for d in self.directions if d.stabilized_ms is not None]
        return max(values) if values else None


def analyze_skype_calls(trees: Dict[str, TraceTree]) -> List[SkypeSummary]:
    """One :class:`SkypeSummary` per ``skype.call`` trace."""
    summaries: List[SkypeSummary] = []
    for tree in trees.values():
        root = tree.root
        if root is None or root.name != "skype.call":
            continue
        direct = root.attrs.get("direct_rtt_ms")
        summary = SkypeSummary(
            trace_id=tree.trace_id,
            session_id=root.attrs.get("session_id", -1),
            caller=root.attrs.get("caller", "?"),
            callee=root.attrs.get("callee", "?"),
            direct_rtt_ms=direct,
        )
        for direction in root.find("skype.direction"):
            probes = direction.find("skype.probe")
            by_as: Dict[str, int] = {}
            best: Optional[float] = direct
            for probe in probes:
                asn = str(probe.attrs.get("relay_as"))
                by_as[asn] = by_as.get(asn, 0) + 1
                rtt = probe.attrs.get("path_rtt_ms")
                if rtt is not None and (best is None or rtt < best):
                    best = rtt
            summary.directions.append(
                SkypeDirectionSummary(
                    direction=direction.attrs.get("direction", "?"),
                    probes=len(probes),
                    bounces=direction.attrs.get("bounces", 0),
                    stabilized_ms=direction.attrs.get("stabilized_ms"),
                    final_rtt_ms=direction.attrs.get("final_rtt_ms"),
                    best_path_rtt_ms=best,
                    same_as_duplicate_probes=sum(
                        n - 1 for n in by_as.values() if n > 1
                    ),
                    probes_by_as=by_as,
                )
            )
        summaries.append(summary)
    return summaries


def fault_links(trees: Dict[str, TraceTree]) -> Dict[str, List[TraceNode]]:
    """Map each disrupted trace id to the fault spans that touched it."""
    links: Dict[str, List[TraceNode]] = {}
    for tree in trees.values():
        root = tree.root
        if root is None or root.name != "fault":
            continue
        for disrupted in root.attrs.get("disrupted", []):
            links.setdefault(disrupted, []).append(root)
    return links


def probe_messages_by_as(
    calls: List[CallSummary], skypes: List[SkypeSummary]
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Per-AS probe *message* totals for both protocols (L2/L4 view).

    Skype probes count two messages each (request + response), matching
    ASAP's close-set accounting, so the columns compare like for like.
    """
    asap: Dict[str, int] = {}
    for call in calls:
        for asn, count in call.probes_by_as.items():
            asap[asn] = asap.get(asn, 0) + count
    skype: Dict[str, int] = {}
    for session in skypes:
        for direction in session.directions:
            for asn, probes in direction.probes_by_as.items():
                skype[asn] = skype.get(asn, 0) + 2 * probes
    return asap, skype


# -- aggregation -------------------------------------------------------------


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None:
        return "-"
    return f"{value:.1f}{unit}"


@dataclass
class LimitsReport:
    """The four Skype limits, measured for both protocols from traces.

    Every number is derived purely from trace records; ``n_*`` counts
    say how many calls/sessions back each column.
    """

    n_calls: int
    n_skype: int
    l1_asap_gap_ms: Optional[float]
    l1_skype_gap_ms: Optional[float]
    l2_asap_dup_probes: int
    l2_skype_dup_probes: int
    l3_asap_setup_ms: Optional[float]
    l3_skype_stabilize_ms: Optional[float]
    l3_asap_bounces: float
    l3_skype_bounces: float
    l4_asap_probe_messages: int
    l4_skype_probe_messages: int
    asap_probes_by_as: Dict[str, int] = field(default_factory=dict)
    skype_probes_by_as: Dict[str, int] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, str]]:
        """(label, "asap vs skype") rows for a text report."""
        return [
            ("calls analyzed", f"{self.n_calls} asap / {self.n_skype} skype"),
            (
                "L1 relay-RTT gap (mean ms)",
                f"{_fmt(self.l1_asap_gap_ms)} vs {_fmt(self.l1_skype_gap_ms)}",
            ),
            (
                "L2 same-AS duplicate probes",
                f"{self.l2_asap_dup_probes} vs {self.l2_skype_dup_probes}",
            ),
            (
                "L3 stabilization (mean ms)",
                f"{_fmt(self.l3_asap_setup_ms)} vs {_fmt(self.l3_skype_stabilize_ms)}",
            ),
            (
                "L3 relay bounces (mean)",
                f"{self.l3_asap_bounces:.2f} vs {self.l3_skype_bounces:.2f}",
            ),
            (
                "L4 probe messages (total)",
                f"{self.l4_asap_probe_messages} vs {self.l4_skype_probe_messages}",
            ),
        ]


def limits_report(
    calls: List[CallSummary], skypes: List[SkypeSummary]
) -> LimitsReport:
    """Aggregate per-call summaries into the L1–L4 comparison."""
    asap_gaps = [c.relay_gap_ms for c in calls if c.relay_gap_ms is not None]
    skype_gaps = [
        d.relay_gap_ms
        for s in skypes
        for d in s.directions
        if d.relay_gap_ms is not None
    ]
    asap_dup = sum(call.same_as_duplicate_probes for call in calls)
    skype_dup = sum(
        d.same_as_duplicate_probes for s in skypes for d in s.directions
    )
    setups = [c.setup_ms for c in calls if c.setup_ms is not None]
    stabilizations = [s.stabilized_ms for s in skypes if s.stabilized_ms is not None]
    asap_bounces = [float(c.failovers) for c in calls]
    skype_bounces = [float(s.bounces) for s in skypes]
    asap_by_as, skype_by_as = probe_messages_by_as(calls, skypes)
    return LimitsReport(
        n_calls=len(calls),
        n_skype=len(skypes),
        l1_asap_gap_ms=_mean(asap_gaps),
        l1_skype_gap_ms=_mean(skype_gaps),
        l2_asap_dup_probes=asap_dup,
        l2_skype_dup_probes=skype_dup,
        l3_asap_setup_ms=_mean(setups),
        l3_skype_stabilize_ms=_mean(stabilizations),
        l3_asap_bounces=_mean(asap_bounces) or 0.0,
        l3_skype_bounces=_mean(skype_bounces) or 0.0,
        l4_asap_probe_messages=sum(asap_by_as.values()),
        l4_skype_probe_messages=sum(skype_by_as.values()),
        asap_probes_by_as=asap_by_as,
        skype_probes_by_as=skype_by_as,
    )


# -- rendering ---------------------------------------------------------------

#: Attributes worth showing per span/point name (keeps timelines terse).
_TIMELINE_ATTRS = {
    "setup.ping": ("attempt", "outcome"),
    "setup.select": ("relay_needed", "one_hop", "two_hop", "messages"),
    "setup.close_set": ("leg", "attempt", "outcome"),
    "setup.two_hop": ("cluster", "outcome"),
    "setup.relay_pick": ("relay", "chosen_rtt_ms", "best_candidate_rtt_ms"),
    "setup.done": ("outcome", "setup_ms", "path"),
    "close_set.build": ("owner", "asn", "size", "probe_messages"),
    "media": ("path", "relay"),
    "media.relay_lost": ("relay",),
    "media.failover": ("old_relay", "new_relay", "failover_ms", "interruption_ms"),
    "media.failover_candidate_dead": ("candidate",),
    "media.degraded": ("old_relay", "interruption_ms"),
    "media.dropped": ("old_relay",),
    "net.request": ("category", "outcome"),
    "net.send": ("category", "dropped"),
    "join.retry": ("attempt",),
    "skype.direction": ("direction", "bounces", "stabilized_ms", "final_rtt_ms"),
    "skype.probe": ("relay", "path_rtt_ms", "measured_rtt_ms"),
    "skype.switch": ("relay", "measured_rtt_ms"),
    "skype.relay_died": ("relay",),
}


def _attr_string(node: TraceNode) -> str:
    keys = _TIMELINE_ATTRS.get(node.name)
    attrs = node.attrs
    if keys is None:
        keys = tuple(sorted(attrs))
    parts = [f"{k}={attrs[k]}" for k in keys if attrs.get(k) is not None]
    return " ".join(parts)


def render_timeline(
    tree: TraceTree,
    faults: Optional[Dict[str, List[TraceNode]]] = None,
    max_points: int = 200,
) -> List[str]:
    """One trace as indented text lines, times relative to its root."""
    root = tree.root
    if root is None:
        return [f"trace {tree.trace_id}: incomplete (no root span recorded)"]
    origin = root.start_ms
    header = (
        f"{root.name} [{tree.trace_id}] "
        f"{_attr_string(root) or ''}".rstrip()
        + f" ({root.duration_ms:.1f} ms)"
    )
    lines = [header]
    emitted = 0

    def walk(node: TraceNode, depth: int) -> None:
        nonlocal emitted
        for child in node.children:
            if emitted >= max_points:
                return
            emitted += 1
            indent = "  " * depth
            offset = child.start_ms - origin
            if child.kind == "point":
                lines.append(
                    f"{indent}@{offset:10.1f}  {child.name}  {_attr_string(child)}".rstrip()
                )
            else:
                lines.append(
                    f"{indent}@{offset:10.1f}  {child.name} "
                    f"[{child.duration_ms:.1f} ms]  {_attr_string(child)}".rstrip()
                )
            walk(child, depth + 1)

    walk(root, 1)
    if emitted >= max_points:
        lines.append(f"  … truncated at {max_points} entries")
    for fault in (faults or {}).get(tree.trace_id, []):
        offset = fault.start_ms - origin
        lines.append(
            f"  !{offset:10.1f}  fault {fault.attrs.get('kind')} "
            f"target={fault.attrs.get('target')}"
        )
    return lines
