"""The unified repro report: one run directory, one rendered story.

``repro report`` joins the three observability artifacts a run leaves
behind — ``run_manifest.json`` (what ran), ``telemetry.jsonl`` (how the
subsystems behaved over time), ``traces.jsonl`` (why, causally) — into
a single terminal report:

- **subsystem timelines** — every telemetry series, grouped by its
  subsystem prefix (the part of the name before the first dot:
  ``control.*``, ``net.*``, ``engine.*``, ``runtime.*``) and rendered
  as an ASCII sparkline over the run's time axis;
- **self-time profile** — per span *name*, how much wall/virtual time
  was spent in spans of that name minus their children (the classic
  profile view, computed from the reconstructed trees of
  :func:`repro.obs.trace_analysis.build_trees`);
- **critical path** — the longest root-to-leaf span chain of the
  longest trace, phase by phase;
- **flamegraph export** — the merged span trees as a nested
  ``{name, value, children}`` JSON document, the format d3-flamegraph
  style renderers consume.

Cross-process runs (``serve`` + ``dial``) each write their own
``traces.jsonl``; pass the extra files and
:func:`repro.obs.trace.load_trace_files` merges them into one causal
record set before analysis, stitching the remote continuation spans
back under their callers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.manifest import MANIFEST_FILENAME, load_manifest, validate_manifest
from repro.obs.timeseries import TELEMETRY_FILENAME, load_telemetry_file
from repro.obs.trace import TRACES_FILENAME, load_trace_files
from repro.obs.trace_analysis import TraceNode, TraceTree, build_trees

__all__ = [
    "RunArtifacts",
    "critical_path",
    "flame_document",
    "load_run",
    "render_report",
    "self_time_profile",
    "series_by_subsystem",
    "sparkline",
    "write_flame",
]

_BLOCKS = " ▁▂▃▄▅▆▇█"


class RunArtifacts:
    """Everything one run directory holds, loaded and parsed."""

    def __init__(
        self,
        run_dir: Path,
        manifest: Optional[dict],
        telemetry: List[dict],
        traces: List[dict],
        trace_files: List[Path],
    ) -> None:
        self.run_dir = run_dir
        self.manifest = manifest
        self.telemetry = telemetry
        self.traces = traces
        self.trace_files = trace_files


def load_run(
    run_dir: Union[str, Path],
    extra_traces: Sequence[Union[str, Path]] = (),
) -> RunArtifacts:
    """Load a run directory's manifest + telemetry + (merged) traces.

    Every artifact is optional — a run without ``--trace`` has no
    traces.jsonl; the report renders whatever exists.  ``extra_traces``
    are additional trace files (e.g. the ``serve`` side of a
    cross-process run) merged with the run's own before analysis.
    """
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise FileNotFoundError(f"run directory {run_dir} does not exist")
    manifest: Optional[dict] = None
    manifest_path = run_dir / MANIFEST_FILENAME
    if manifest_path.is_file():
        manifest = load_manifest(manifest_path)
    telemetry: List[dict] = []
    telemetry_path = run_dir / TELEMETRY_FILENAME
    if telemetry_path.is_file():
        telemetry = load_telemetry_file(telemetry_path)
    trace_files: List[Path] = []
    own_traces = run_dir / TRACES_FILENAME
    if own_traces.is_file():
        trace_files.append(own_traces)
    trace_files.extend(Path(p) for p in extra_traces)
    traces: List[dict] = []
    if trace_files:
        traces = load_trace_files(trace_files)
    return RunArtifacts(run_dir, manifest, telemetry, traces, trace_files)


# -- telemetry timelines -----------------------------------------------------


def series_by_subsystem(
    records: Sequence[dict],
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Group telemetry samples: subsystem -> series label -> points.

    The subsystem is the series-name prefix before the first dot;
    tagged series get one timeline per distinct tag set (the label
    carries the tags, e.g. ``control.shard_registrations{shard=0}``).
    """
    grouped: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for record in records:
        if record.get("kind") != "sample":
            continue
        value = record.get("value")
        if not isinstance(value, (int, float)):
            continue
        series = record["series"]
        subsystem = series.partition(".")[0]
        tags = record.get("tags")
        label = series
        if tags:
            inner = ",".join(f"{k}={v}" for k, v in sorted(tags.items()))
            label = f"{series}{{{inner}}}"
        grouped.setdefault(subsystem, {}).setdefault(label, []).append(
            (record["t_ms"], float(value))
        )
    return grouped


def sparkline(points: Sequence[Tuple[float, float]], width: int = 48) -> str:
    """Render (t, value) points as a fixed-width ASCII sparkline.

    The time axis is divided into ``width`` equal buckets; each bucket
    shows the last value that landed in it (empty buckets carry the
    previous level forward, so a step series reads as a step).
    """
    if not points:
        return " " * width
    t0 = points[0][0]
    t1 = points[-1][0]
    span = t1 - t0
    buckets: List[Optional[float]] = [None] * width
    for t, value in points:
        slot = int((t - t0) / span * (width - 1)) if span > 0 else 0
        buckets[slot] = value
    values = [v for v in buckets if v is not None]
    lo, hi = min(values), max(values)
    scale = hi - lo
    out: List[str] = []
    level: Optional[float] = None
    for bucket in buckets:
        if bucket is not None:
            level = bucket
        if level is None:
            out.append(" ")
        elif scale <= 0:
            out.append(_BLOCKS[4])
        else:
            index = 1 + int((level - lo) / scale * (len(_BLOCKS) - 2))
            out.append(_BLOCKS[min(index, len(_BLOCKS) - 1)])
    return "".join(out)


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


# -- trace profile -----------------------------------------------------------


def _span_children_ms(node: TraceNode) -> float:
    return sum(
        child.duration_ms for child in node.children if child.kind == "span"
    )


def self_time_profile(trees: Dict[str, TraceTree]) -> List[dict]:
    """Per span-name totals: count, total time, self time (no children).

    Sorted by self time descending — the profile view of where a run's
    (virtual or wall) time actually went.
    """
    profile: Dict[str, dict] = {}
    stack: List[TraceNode] = []
    for tree in trees.values():
        stack.extend(node for node in ([tree.root] if tree.root else []))
        stack.extend(tree.orphans)
    while stack:
        node = stack.pop()
        stack.extend(node.children)
        if node.kind != "span":
            continue
        row = profile.setdefault(
            node.name, {"name": node.name, "count": 0, "total_ms": 0.0, "self_ms": 0.0}
        )
        row["count"] += 1
        row["total_ms"] += node.duration_ms
        row["self_ms"] += max(0.0, node.duration_ms - _span_children_ms(node))
    rows = sorted(profile.values(), key=lambda r: (-r["self_ms"], r["name"]))
    for row in rows:
        row["total_ms"] = round(row["total_ms"], 3)
        row["self_ms"] = round(row["self_ms"], 3)
    return rows


def critical_path(tree: TraceTree) -> List[dict]:
    """The root-to-leaf chain of spans that gated this trace's end.

    At every level descend into the child span whose *end* is latest
    (ties: longest duration) — the span still running when its parent
    finished is the one that gated it.
    """
    path: List[dict] = []
    node = tree.root
    while node is not None:
        path.append(
            {
                "name": node.name,
                "start_ms": round(node.start_ms, 3),
                "end_ms": round(node.end_ms, 3),
                "duration_ms": round(node.duration_ms, 3),
            }
        )
        spans = [child for child in node.children if child.kind == "span"]
        node = (
            max(spans, key=lambda c: (c.end_ms, c.duration_ms)) if spans else None
        )
    return path


def flame_document(trees: Dict[str, TraceTree]) -> dict:
    """The merged span forest as a nested flamegraph JSON document.

    Same-named siblings merge (their values add), exactly like folded
    flamegraph stacks; ``value`` is total milliseconds in that frame.
    """

    def build(name: str, nodes: List[TraceNode]) -> dict:
        children: Dict[str, List[TraceNode]] = {}
        total = 0.0
        for node in nodes:
            total += node.duration_ms
            for child in node.children:
                if child.kind == "span":
                    children.setdefault(child.name, []).append(child)
        frame = {"name": name, "value": round(total, 3)}
        if children:
            frame["children"] = [
                build(child_name, group)
                for child_name, group in sorted(children.items())
            ]
        return frame

    roots: Dict[str, List[TraceNode]] = {}
    for tree in trees.values():
        if tree.root is not None:
            roots.setdefault(tree.root.name, []).append(tree.root)
    return {
        "name": "run",
        "value": round(
            sum(t.root.duration_ms for t in trees.values() if t.root), 3
        ),
        "children": [build(name, group) for name, group in sorted(roots.items())],
    }


# -- rendering ---------------------------------------------------------------


def render_report(
    artifacts: RunArtifacts,
    *,
    width: int = 48,
    max_series: int = 40,
    profile_rows: int = 15,
) -> List[str]:
    """The full terminal report, as a list of printable lines."""
    lines: List[str] = [f"run report: {artifacts.run_dir}"]

    manifest = artifacts.manifest
    if manifest is not None:
        problems = validate_manifest(manifest)
        status = "valid" if not problems else f"INVALID ({'; '.join(problems)})"
        lines.append(
            f"  manifest: schema {manifest.get('schema')} "
            f"command={manifest.get('command')!r} ({status})"
        )
        telemetry_block = manifest.get("telemetry")
        if telemetry_block:
            lines.append(
                f"  telemetry: {telemetry_block.get('samples')} samples, "
                f"{telemetry_block.get('series')} series, "
                f"cadence {telemetry_block.get('cadence_ms')} ms, "
                f"{telemetry_block.get('samples_dropped')} dropped"
            )
    else:
        lines.append("  manifest: (none)")

    grouped = series_by_subsystem(artifacts.telemetry)
    if grouped:
        lines.append("")
        lines.append(f"subsystem timelines ({len(grouped)} subsystems):")
        emitted = 0
        for subsystem in sorted(grouped):
            lines.append(f"  [{subsystem}]")
            for label in sorted(grouped[subsystem]):
                if emitted >= max_series:
                    lines.append(f"  … truncated at {max_series} series")
                    break
                points = grouped[subsystem][label]
                last = points[-1][1]
                lines.append(
                    f"    {label:<44} {sparkline(points, width)} "
                    f"last={_fmt_value(last)} n={len(points)}"
                )
                emitted += 1
            if emitted >= max_series:
                break
    elif artifacts.telemetry:
        lines.append("  telemetry: header only (no samples)")

    if artifacts.traces:
        trees = build_trees(artifacts.traces)
        lines.append("")
        lines.append(
            f"traces: {len(trees)} trace trees from "
            f"{len(artifacts.trace_files)} file(s)"
        )
        profile = self_time_profile(trees)
        if profile:
            lines.append("  self-time profile (per span kind):")
            lines.append(
                f"    {'span':<28} {'count':>6} {'total ms':>12} {'self ms':>12}"
            )
            for row in profile[:profile_rows]:
                lines.append(
                    f"    {row['name']:<28} {row['count']:>6} "
                    f"{row['total_ms']:>12.1f} {row['self_ms']:>12.1f}"
                )
        rooted = [t for t in trees.values() if t.root is not None]
        if rooted:
            longest = max(rooted, key=lambda t: t.root.duration_ms)
            path = critical_path(longest)
            lines.append(
                f"  critical path ({longest.name} [{longest.trace_id}], "
                f"{path[0]['duration_ms']:.1f} ms):"
            )
            for step in path:
                lines.append(
                    f"    @{step['start_ms']:>10.1f}  {step['name']} "
                    f"[{step['duration_ms']:.1f} ms]"
                )
    return lines


def write_flame(
    artifacts: RunArtifacts, path: Union[str, Path]
) -> Tuple[Path, int]:
    """Write the flamegraph JSON export; returns (path, frame count)."""
    trees = build_trees(artifacts.traces)
    document = flame_document(trees)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )

    def count(frame: dict) -> int:
        return 1 + sum(count(child) for child in frame.get("children", ()))

    return path, count(document)
