"""Span-based wall-clock timers with nesting.

A span measures one named stretch of work::

    with obs.span("scenario.build", scale="tiny"):
        ...

On exit the duration lands in the histogram ``span.<name>`` (seconds)
and — when the active sink accepts the span's level — one JSONL event is
written with the duration and the nesting depth.  Spans at ``debug``
level cost a histogram update and nothing else under the default
``info`` sink, which keeps high-cardinality spans (one per cluster)
cheap.
"""

from __future__ import annotations

import time

__all__ = ["NULL_SPAN", "Span"]


class Span:
    """A timed, optionally-nested section of work (context manager)."""

    __slots__ = ("name", "level", "fields", "observer", "depth", "duration_s", "_t0")

    def __init__(self, observer, name: str, level: str = "info", **fields) -> None:
        self.observer = observer
        self.name = name
        self.level = level
        self.fields = fields
        self.depth = 0
        self.duration_s: float = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self.depth = self.observer.span_depth
        self.observer.span_depth += 1
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        self.observer.span_depth -= 1
        self.observer.registry.histogram(f"span.{self.name}").observe(self.duration_s)
        sink = self.observer.sink
        if sink is not None:
            sink.emit(
                "span",
                self.name,
                level=self.level,
                dur_s=round(self.duration_s, 6),
                depth=self.depth,
                **self.fields,
            )
        return False


class _NullSpan:
    """The span used when observability is off: a free context manager."""

    __slots__ = ()

    depth = 0
    duration_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared no-op span instance (stateless, safe to reuse and nest).
NULL_SPAN = _NullSpan()
