"""Incremental close-set repair under churn — parity-exact by construction.

A surrogate's close cluster set (paper Fig. 9) is a function of (a) the
AS graph, (b) *which clusters are online*, and (c) the probe matrix.
Churn only moves (b), and only at the granularity of a cluster turning
dark (last host left) or lighting up (first host back) — host counts
above one never change the set.  So repair decomposes cleanly:

- the BFS *reachability* (which ASes are visited, at what depth) depends
  on membership only through each visited AS's expansion verdict
  ("did any of its clusters pass the thresholds"; empty/transit ASes
  always expand);
- if no verdict flips, the visited set and depths are untouched and the
  repair is a **local patch**: add the newly-online cluster at its AS's
  recorded depth (threshold-checked), or evict the departed one;
- if a verdict flips (or the change might make one flip), reachability
  can shift arbitrarily far downstream — the maintainer **falls back to
  a from-scratch build**, so parity holds by construction.

The maintainer therefore guarantees: after :meth:`CloseSetMaintainer.
drain`, every tracked set's ``entries`` dict is *identical* to what
:func:`repro.core.close_cluster.construct_close_cluster_set` would
build on the same membership — the property the parity tests and the
soak's staleness gauge check.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.bgp.asgraph import ASGraph
from repro.core.close_cluster import (
    CloseClusterEntry,
    CloseClusterSet,
    construct_close_cluster_set,
)
from repro.core.config import ASAPConfig
from repro.errors import ProtocolError

__all__ = ["CloseSetMaintainer", "ClusterMembership", "MembershipEvent"]

#: Event kinds the maintainer consumes (host granularity; the membership
#: tracker collapses them to cluster online/offline transitions).
EVENT_KINDS = ("host-join", "host-leave")


@dataclass(frozen=True)
class MembershipEvent:
    """One host arriving in / departing from a prefix-cluster."""

    at_ms: float
    kind: str      # "host-join" | "host-leave"
    cluster: int   # matrix index of the affected cluster

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ProtocolError(f"unknown membership event kind {self.kind!r}")

    def to_json(self) -> str:
        return json.dumps(
            {"at_ms": round(self.at_ms, 3), "kind": self.kind, "cluster": self.cluster},
            sort_keys=True,
            separators=(",", ":"),
        )


class ClusterMembership:
    """Online host counts per cluster; reports 0↔1 transitions.

    Only those transitions can change a close set — the BFS sees a
    cluster, not its population — so everything else is a no-op the
    maintainer counts but never repairs for.
    """

    def __init__(self, online_counts: Dict[int, int]) -> None:
        self._counts: Dict[int, int] = {
            int(cluster): int(count) for cluster, count in online_counts.items()
        }

    def online_count(self, cluster: int) -> int:
        return self._counts.get(cluster, 0)

    def is_online(self, cluster: int) -> bool:
        return self._counts.get(cluster, 0) > 0

    def online_only(self, clusters: List[int]) -> List[int]:
        """Filter a static cluster list down to the online members."""
        return [c for c in clusters if self.is_online(c)]

    def apply(self, event: MembershipEvent) -> Optional[str]:
        """Apply one event; returns ``"online"``/``"offline"`` on a
        0↔1 transition, None when the cluster's state did not flip."""
        before = self._counts.get(event.cluster, 0)
        if event.kind == "host-join":
            after = before + 1
        else:
            after = max(0, before - 1)
        self._counts[event.cluster] = after
        if before == 0 and after == 1:
            return "online"
        if before == 1 and after == 0:
            return "offline"
        return None


class CloseSetMaintainer:
    """Keeps tracked close sets parity-exact under membership churn.

    ``clusters_in_as`` is the *static* AS→clusters table (e.g.
    :meth:`ASAPSystem.clusters_in_as`); the maintainer composes it with
    its :class:`ClusterMembership` so builds and verdicts see only
    online clusters.  ``lat``/``loss`` are the surrogate probe callables
    of the reference builder.
    """

    def __init__(
        self,
        graph: ASGraph,
        membership: ClusterMembership,
        clusters_in_as: Callable[[int], List[int]],
        asn_of_cluster: Callable[[int], int],
        lat: Callable[[int, int], Optional[float]],
        loss: Callable[[int, int], Optional[float]],
        config: Optional[ASAPConfig] = None,
    ) -> None:
        self._graph = graph
        self._membership = membership
        self._static_clusters_in_as = clusters_in_as
        self._asn_of_cluster = asn_of_cluster
        self._lat = lat
        self._loss = loss
        self._config = config if config is not None else ASAPConfig()
        # owner cluster -> (maintained set, {asn: (depth, expands)})
        self._tracked: Dict[int, Tuple[CloseClusterSet, Dict[int, Tuple[int, bool]]]] = {}
        self._dormant: set = set()  # tracked owners whose cluster went dark
        self._queue: Deque[MembershipEvent] = deque()
        self.repair_log: List[str] = []
        self.events_seen = 0
        self.local_repairs = 0
        self.rebuilds = 0
        self.noops = 0

    @classmethod
    def from_system(cls, system, membership: Optional[ClusterMembership] = None):
        """Wire a maintainer to a running :class:`ASAPSystem`."""
        view = system.scenario.matrix_view()
        if membership is None:
            membership = ClusterMembership(
                {idx: system.online_size(idx) for idx in range(len(view.asn_of))}
            )
        return cls(
            graph=system.scenario.protocol_graph,
            membership=membership,
            clusters_in_as=system.clusters_in_as,
            asn_of_cluster=lambda c: int(view.asn_of[c]),
            lat=system._probe_lat,
            loss=system._probe_loss,
            config=system.config,
        )

    # -- views ---------------------------------------------------------------

    @property
    def membership(self) -> ClusterMembership:
        return self._membership

    @property
    def tracked(self) -> List[int]:
        return sorted(self._tracked)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def current(self, owner: int) -> CloseClusterSet:
        """The maintained set of a tracked owner (drained or not)."""
        try:
            return self._tracked[owner][0]
        except KeyError:
            raise ProtocolError(f"cluster {owner} is not tracked") from None

    # -- lifecycle -------------------------------------------------------------

    def track(self, owner: int) -> CloseClusterSet:
        """Start maintaining a cluster's close set (fresh build now)."""
        if not self._membership.is_online(owner):
            raise ProtocolError(f"cluster {owner} is offline; cannot track")
        return self._build(owner)

    def enqueue(self, event: MembershipEvent) -> None:
        self._queue.append(event)

    def drain(self) -> int:
        """Process every queued event in arrival order; after this the
        maintained sets match a from-scratch build on the resulting
        membership.  Returns the number of events processed."""
        processed = 0
        while self._queue:
            event = self._queue.popleft()
            processed += 1
            self.events_seen += 1
            transition = self._membership.apply(event)
            if transition is None:
                self.noops += 1
                continue
            self._on_transition(event.cluster, transition, event.at_ms)
        return processed

    def staleness(self, owner: int) -> float:
        """Divergence of the maintained set from a fresh build *right
        now* — ``|maintained Δ fresh| / max(1, |fresh|)``.  Zero after a
        drain; positive while repair events are still queued.  This is
        the soak's convergence gauge (cf. :mod:`repro.core.maintenance`).
        """
        current = self.current(owner)
        fresh = self._fresh(owner)
        diff = set(current.entries.items()) ^ set(fresh.entries.items())
        return len(diff) / max(1, len(fresh.entries))

    # -- repair ------------------------------------------------------------------

    def _on_transition(self, cluster: int, transition: str, at_ms: float) -> None:
        # The flipped cluster may itself be a tracked owner.
        if transition == "offline" and cluster in self._tracked:
            del self._tracked[cluster]
            self._dormant.add(cluster)
            self._log(at_ms, "owner-dark", owner=cluster)
        elif transition == "online" and cluster in self._dormant:
            self._dormant.discard(cluster)
            self._build(cluster)
            self._log(at_ms, "owner-return", owner=cluster)
        asn = int(self._asn_of_cluster(cluster))
        for owner in sorted(self._tracked):
            if owner == cluster:
                continue  # just rebuilt above (owner-return)
            self._repair_owner(owner, cluster, asn, transition, at_ms)

    def _repair_owner(
        self, owner: int, cluster: int, asn: int, transition: str, at_ms: float
    ) -> None:
        close_set, meta = self._tracked[owner]
        if asn not in meta:
            # The AS was never visited by this owner's BFS; membership
            # inside it cannot affect any visited AS's verdict, so the
            # set is untouched.
            self.noops += 1
            return
        depth, old_verdict = meta[asn]
        new_verdict = self._verdict(owner, asn, depth)
        if new_verdict != old_verdict and depth < self._config.k_hops:
            # Expansion rights through this AS flipped: reachability
            # downstream may change arbitrarily — rebuild from scratch.
            self._build(owner)
            self._log(
                at_ms, "rebuild", owner=owner, cluster=cluster, asn=asn,
                verdict=new_verdict,
            )
            self.rebuilds += 1
            obs.counter("control.maintainer.rebuilds").inc()
            return
        # Verdict unchanged (or the AS sits at the hop limit and never
        # expands): the BFS shape is intact, patch the entries in place.
        meta[asn] = (depth, new_verdict)
        if transition == "offline":
            close_set.entries.pop(cluster, None)
        else:
            measured = self._measure(owner, cluster)
            if measured is not None:
                rtt, lost = measured
                if (
                    rtt < self._config.lat_threshold_ms
                    and lost < self._config.loss_threshold
                    and cluster not in close_set.entries
                ):
                    close_set.entries[cluster] = CloseClusterEntry(
                        cluster, rtt, lost, depth
                    )
        self._log(at_ms, "patch", owner=owner, cluster=cluster, op=transition)
        self.local_repairs += 1
        obs.counter("control.maintainer.local_repairs").inc()

    # -- internals ----------------------------------------------------------------

    def _clusters_in_as(self, asn: int) -> List[int]:
        return self._membership.online_only(self._static_clusters_in_as(asn))

    def _fresh(
        self, owner: int, meta_out: Optional[Dict[int, Tuple[int, bool]]] = None
    ) -> CloseClusterSet:
        return construct_close_cluster_set(
            owner,
            int(self._asn_of_cluster(owner)),
            self._graph,
            self._clusters_in_as,
            self._lat,
            self._loss,
            self._config,
            meta_out=meta_out,
        )

    def _build(self, owner: int) -> CloseClusterSet:
        meta: Dict[int, Tuple[int, bool]] = {}
        close_set = self._fresh(owner, meta_out=meta)
        self._tracked[owner] = (close_set, meta)
        return close_set

    def _measure(self, owner: int, other: int) -> Optional[Tuple[float, float]]:
        rtt = self._lat(owner, other)
        lost = self._loss(owner, other)
        if rtt is None or lost is None:
            return None
        return rtt, lost

    def _verdict(self, owner: int, asn: int, depth: int) -> bool:
        """Expansion rights through one AS under current membership —
        the same rule as ``_visit_as``: own AS and transit (empty) ASes
        always expand, populated ASes need one threshold-passing probe."""
        if depth == 0:
            return True
        clusters = self._clusters_in_as(asn)
        if not clusters:
            return True
        for cluster in clusters:
            measured = self._measure(owner, cluster)
            if measured is None:
                continue
            rtt, lost = measured
            if rtt < self._config.lat_threshold_ms and lost < self._config.loss_threshold:
                return True
        return False

    def _log(self, at_ms: float, kind: str, **fields) -> None:
        doc = {"at_ms": round(at_ms, 3), "kind": kind}
        doc.update(fields)
        self.repair_log.append(json.dumps(doc, sort_keys=True, separators=(",", ":")))

    def stats(self) -> dict:
        return {
            "events_seen": self.events_seen,
            "local_repairs": self.local_repairs,
            "rebuilds": self.rebuilds,
            "noops": self.noops,
            "tracked": len(self._tracked),
            "dormant": len(self._dormant),
        }
