"""``repro.control`` — the live, sharded, churn-tolerant control plane.

The paper's evaluation is one static snapshot, but its protocol text
assumes an always-on control plane: hosts join and leave continuously
(§6.1), surrogates periodically rebuild close sets (§6.3), and the
bootstrap/directory must survive its own failures.  This package makes
that regime first-class:

- :mod:`repro.control.sharding` — a deterministic consistent-hash ring
  that splits the bootstrap directory by prefix-cluster, plus the
  client-side router host agents use to find (and fail over between)
  directory shards;
- :mod:`repro.control.directory` — the sharded soft-state registry
  itself: TTL-bounded entries, ring-successor failover when the owning
  shard is down, byte-stable operation log;
- :mod:`repro.control.maintainer` — incremental close-set repair: a
  :class:`CloseSetMaintainer` drains join/leave events and patches the
  affected close sets in place, falling back to a from-scratch build
  only when an expansion verdict flips, so the maintained sets stay
  *parity-exact* with :func:`repro.core.close_cluster.
  construct_close_cluster_set` on the same world state.

Everything is seed-deterministic: same seed → same shard placements,
same repair sequence, same logs.
"""

from repro.control.directory import DirectoryStats, ShardedDirectory
from repro.control.maintainer import (
    CloseSetMaintainer,
    ClusterMembership,
    MembershipEvent,
)
from repro.control.sharding import BootstrapRouter, HashRing

__all__ = [
    "BootstrapRouter",
    "CloseSetMaintainer",
    "ClusterMembership",
    "DirectoryStats",
    "HashRing",
    "MembershipEvent",
    "ShardedDirectory",
]
