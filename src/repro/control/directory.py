"""The sharded, soft-state directory the churn soak exercises.

Real P2P directories (the measured Skype supernode layer) are
*soft-state*: a registration is a lease, refreshed by the host and
expired by TTL, so a crashed shard loses nothing durable — hosts
re-register on the next refresh pass and stale entries age out.  That
is the property that makes "registry size bounded under equal
join/leave rates" provable rather than hoped for.

:class:`ShardedDirectory` keeps one registry dict per shard, placed by
the :class:`~repro.control.sharding.HashRing`.  When a shard is down
(a ``shard-down`` fault), joins fail over to the ring successor and
resolves walk the preference chain, so the directory converges after
the owner recovers: refreshes return to the owner, the successor's
copies expire.

Every mutation appends one canonical JSON line to the operation log —
the byte-stable artifact the soak's determinism check diffs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.control.sharding import HashRing
from repro.netaddr import IPv4Address

__all__ = ["DirectoryStats", "RegistryEntry", "ShardedDirectory"]


@dataclass
class RegistryEntry:
    """One leased registration (soft state: refreshed or expired)."""

    ip: str
    registered_ms: float
    expires_ms: float


@dataclass(frozen=True)
class DirectoryStats:
    """Counters one soak run accumulated over the directory."""

    joins: int
    failover_joins: int
    failed_joins: int
    leaves: int
    resolves: int
    resolve_misses: int
    swept: int

    def to_dict(self) -> dict:
        return {
            "joins": self.joins,
            "failover_joins": self.failover_joins,
            "failed_joins": self.failed_joins,
            "leaves": self.leaves,
            "resolves": self.resolves,
            "resolve_misses": self.resolve_misses,
            "swept": self.swept,
        }


class ShardedDirectory:
    """Registry dicts sharded by prefix-cluster over a hash ring."""

    def __init__(
        self,
        ring: HashRing,
        cluster_of_ip: Callable[[IPv4Address], int],
        ttl_ms: float = 600_000.0,
    ) -> None:
        self._ring = ring
        self._cluster_of_ip = cluster_of_ip
        self._ttl_ms = ttl_ms
        self._shards: List[Dict[str, RegistryEntry]] = [
            {} for _ in range(ring.shard_count)
        ]
        self._down: set = set()
        self.log: List[str] = []
        self.joins = 0
        self.failover_joins = 0
        self.failed_joins = 0
        self.leaves = 0
        self.resolves = 0
        self.resolve_misses = 0
        self.swept = 0
        self.peak_total = 0

    # -- placement -----------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self._ring.shard_count

    def owner_of(self, ip: IPv4Address) -> int:
        return self._ring.owner(self._cluster_of_ip(ip))

    def preference_of(self, ip: IPv4Address) -> List[int]:
        return self._ring.preference(self._cluster_of_ip(ip))

    def is_up(self, shard: int) -> bool:
        return shard not in self._down

    # -- logging ---------------------------------------------------------------

    def _log(self, at_ms: float, kind: str, **fields) -> None:
        doc = {"at_ms": round(at_ms, 3), "kind": kind}
        doc.update(fields)
        self.log.append(json.dumps(doc, sort_keys=True, separators=(",", ":")))

    # -- operations ------------------------------------------------------------

    def join(self, ip: IPv4Address, at_ms: float) -> Optional[int]:
        """Register (or refresh) a host's lease on the first live shard
        of its preference chain; returns the shard used, None when the
        whole chain is down.  Re-registration is idempotent: the lease
        is replaced, the registry never grows for a repeated join."""
        self.joins += 1
        owner = self.owner_of(ip)
        for shard in self.preference_of(ip):
            if not self.is_up(shard):
                continue
            self._shards[shard][str(ip)] = RegistryEntry(
                ip=str(ip), registered_ms=at_ms, expires_ms=at_ms + self._ttl_ms
            )
            if shard != owner:
                self.failover_joins += 1
                obs.counter("control.directory.failover_joins").inc()
                self._log(at_ms, "join-failover", ip=str(ip), owner=owner, shard=shard)
            self.peak_total = max(self.peak_total, self.total())
            return shard
        self.failed_joins += 1
        obs.counter("control.directory.failed_joins").inc()
        self._log(at_ms, "join-failed", ip=str(ip), owner=owner)
        return None

    def leave(self, ip: IPv4Address, at_ms: float) -> int:
        """Deregister from every *live* shard holding the lease (entries
        on a down shard linger until its post-recovery sweep)."""
        self.leaves += 1
        removed = 0
        for shard in self.preference_of(ip):
            if not self.is_up(shard):
                continue
            if self._shards[shard].pop(str(ip), None) is not None:
                removed += 1
        self._log(at_ms, "leave", ip=str(ip), removed=removed)
        return removed

    def resolve(self, ip: IPv4Address, at_ms: float) -> Optional[Tuple[int, int]]:
        """Look a host up along its preference chain.

        Returns ``(shard, attempts)`` for a live unexpired lease, None
        on a miss — a *well-formed* not-found, never a hang.
        """
        self.resolves += 1
        attempts = 0
        for shard in self.preference_of(ip):
            if not self.is_up(shard):
                continue
            attempts += 1
            entry = self._shards[shard].get(str(ip))
            if entry is not None and entry.expires_ms > at_ms:
                return shard, attempts
        self.resolve_misses += 1
        return None

    def sweep(self, at_ms: float) -> int:
        """Expire TTL-stale leases on every live shard."""
        dropped = 0
        for shard, registry in enumerate(self._shards):
            if not self.is_up(shard):
                continue
            stale = [ip for ip, entry in registry.items() if entry.expires_ms <= at_ms]
            for ip in stale:
                del registry[ip]
            dropped += len(stale)
        if dropped:
            self.swept += dropped
            self._log(at_ms, "sweep", dropped=dropped)
        return dropped

    # -- shard liveness ----------------------------------------------------------

    def set_shard_down(self, shard: int, at_ms: float) -> None:
        if 0 <= shard < self.shard_count and shard not in self._down:
            self._down.add(shard)
            obs.counter("control.directory.shard_outages").inc()
            self._log(at_ms, "shard-down", shard=shard, lost=len(self._shards[shard]))

    def set_shard_up(self, shard: int, at_ms: float) -> None:
        """Recover a shard.  Its process restarted: the in-memory
        registry it held is gone — soft state rebuilds it."""
        if shard in self._down:
            self._down.discard(shard)
            self._shards[shard].clear()
            self._log(at_ms, "shard-up", shard=shard)

    # -- accounting --------------------------------------------------------------

    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(registry) for registry in self._shards)

    def total(self) -> int:
        return sum(len(registry) for registry in self._shards)

    def stats(self) -> DirectoryStats:
        return DirectoryStats(
            joins=self.joins,
            failover_joins=self.failover_joins,
            failed_joins=self.failed_joins,
            leaves=self.leaves,
            resolves=self.resolves,
            resolve_misses=self.resolve_misses,
            swept=self.swept,
        )
