"""Consistent-hash sharding of the bootstrap directory by prefix-cluster.

One directory for a million hosts is the first thing churn kills (the
measured Skype supernode story).  The control plane splits it: each
prefix-cluster's registrations live on the shard that owns the cluster
id on a consistent-hash ring.  Placement must be *deterministic across
processes* — a joining host and the shard serving it compute the owner
independently — so the ring hashes with BLAKE2 (stable bytes), never
Python's randomized ``hash()``.

Two moving parts:

- :class:`HashRing` — ``shards × virtual_nodes`` points on a 64-bit
  ring; ``owner(key)`` walks clockwise from the key's hash,
  ``preference(key)`` lists distinct shards in successor order (the
  failover chain when the owner is down);
- :class:`BootstrapRouter` — the client-side view: cluster id → the
  wire addresses a host agent should try, owner first.  A plain
  single-bootstrap deployment is the degenerate one-shard router, so
  every existing call path works unchanged.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.netaddr import IPv4Address

__all__ = ["BootstrapRouter", "HashRing"]


def _stable_hash(data: str) -> int:
    """64-bit BLAKE2 hash — identical in every process and run."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over ``shard_count`` directory shards.

    Each shard contributes ``virtual_nodes`` points so load stays even
    when shards are few; a key's owner is the first point clockwise
    from the key's hash.  Keys are prefix-cluster ids (any int/str).
    """

    def __init__(
        self, shard_count: int, virtual_nodes: int = 16, salt: str = "asap-ring"
    ) -> None:
        if shard_count < 1:
            raise ConfigurationError("shard_count must be >= 1")
        if virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be >= 1")
        self.shard_count = shard_count
        self.virtual_nodes = virtual_nodes
        points: List[Tuple[int, int]] = []
        for shard in range(shard_count):
            for replica in range(virtual_nodes):
                points.append((_stable_hash(f"{salt}:{shard}:{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def owner(self, key) -> int:
        """The shard owning a key (first ring point clockwise)."""
        index = bisect.bisect_right(self._hashes, _stable_hash(f"key:{key}"))
        if index == len(self._hashes):
            index = 0
        return self._shards[index]

    def preference(self, key, count: int = None) -> List[int]:
        """Distinct shards in clockwise order from the key: the owner,
        then its ring successors — the failover chain."""
        if count is None:
            count = self.shard_count
        count = min(count, self.shard_count)
        start = bisect.bisect_right(self._hashes, _stable_hash(f"key:{key}"))
        seen: List[int] = []
        for offset in range(len(self._shards)):
            shard = self._shards[(start + offset) % len(self._shards)]
            if shard not in seen:
                seen.append(shard)
                if len(seen) >= count:
                    break
        return seen


class BootstrapRouter:
    """Client-side shard resolution: which bootstrap addresses serve a key.

    ``cluster_of_ip`` maps an overlay IP to its prefix-cluster id (the
    sharding key); ``shard_addrs[i]`` is shard *i*'s wire address.  The
    router is pure computation — no I/O, no liveness state — so every
    agent derives the same owner and the same failover order.
    """

    def __init__(
        self,
        ring: HashRing,
        shard_addrs: Sequence[str],
        cluster_of_ip: Callable[[IPv4Address], int],
    ) -> None:
        if len(shard_addrs) != ring.shard_count:
            raise ConfigurationError(
                f"{len(shard_addrs)} addresses for {ring.shard_count} shards"
            )
        self._ring = ring
        self._addrs = list(shard_addrs)
        self._cluster_of_ip = cluster_of_ip

    @classmethod
    def single(cls, addr: str) -> "BootstrapRouter":
        """The degenerate one-shard router (a plain bootstrap address)."""
        return cls(HashRing(1, 1), [addr], lambda ip: 0)

    @property
    def shard_count(self) -> int:
        return self._ring.shard_count

    @property
    def addrs(self) -> List[str]:
        return list(self._addrs)

    def addrs_for(self, ip: IPv4Address) -> List[str]:
        """Directory addresses for an overlay IP, owner shard first."""
        key = self._cluster_of_ip(ip)
        return [self._addrs[s] for s in self._ring.preference(key)]

    def owner_addr(self, ip: IPv4Address) -> str:
        return self._addrs[self._ring.owner(self._cluster_of_ip(ip))]
