"""Simulated network: host-to-host message delivery over the latency model.

Control-plane messages are delivered after the one-way delay of the
direct policy path between the two hosts; messages to unreachable hosts
are silently dropped (like UDP into a failed AS).  Per-category message
counters feed the overhead metric (paper Fig. 18).

Beyond fire-and-forget :meth:`SimNetwork.send`, the network supports
**request/response** exchanges (:meth:`SimNetwork.request`) with
per-call timeouts — the primitive the fault-tolerant runtime's retry
state machines are built on — and three fault dimensions the injector
(:mod:`repro.faults`) drives:

- *down hosts* (crashed/churned peers, bootstrap outages);
- *down ASes* (mid-run AS failures: anything to or from the AS drops);
- *loss* (a uniform background rate plus time-windowed bursts, sampled
  from a seeded generator so runs reproduce exactly).

Fault checks happen at send time, in a fixed order (unregistered →
host-down → AS-down → unreachable → loss), so a run's drop record is a
pure function of the schedule and seed.  With no faults configured the
loss sampler is never consulted and behaviour is identical to the
original fire-and-forget network.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.measurement.latency import LatencyModel
from repro.netaddr import IPv4Address
from repro.sim.engine import Simulator
from repro.topology.population import Host
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class Message:
    """A control-plane message in flight."""

    src: IPv4Address
    dst: IPv4Address
    category: str
    payload: Any = None


Handler = Callable[[Message], None]


class SimNetwork:
    """Delivers messages between registered hosts through the simulator."""

    def __init__(self, sim: Simulator, latency: LatencyModel, seed: int = 0) -> None:
        self._sim = sim
        self._latency = latency
        self._hosts: Dict[IPv4Address, Host] = {}
        self._handlers: Dict[IPv4Address, Handler] = {}
        self.sent_by_category: Counter = Counter()
        self.dropped = 0
        self.dropped_by_reason: Counter = Counter()
        self.timeouts_by_category: Counter = Counter()
        self._down_hosts: Set[IPv4Address] = set()
        self._down_ases: Set[int] = set()
        self._background_loss = 0.0
        #: Active loss bursts as (rate, asn-or-None); pushed/popped by the
        #: fault injector at burst boundaries.
        self._active_loss: List[Tuple[float, Optional[int]]] = []
        self._loss_rng = derive_rng(seed, "sim-network-loss")

    @property
    def total_sent(self) -> int:
        return sum(self.sent_by_category.values())

    @property
    def total_timeouts(self) -> int:
        return sum(self.timeouts_by_category.values())

    def register(self, host: Host, handler: Handler) -> None:
        """Attach a host with its message handler."""
        self._hosts[host.ip] = host
        self._handlers[host.ip] = handler

    def is_registered(self, ip: IPv4Address) -> bool:
        return ip in self._hosts

    # -- fault state (driven by repro.faults.FaultInjector) -----------------

    def reseed_loss(self, seed: int) -> None:
        """Re-derive the loss sampler (fault schedules pin their seed)."""
        self._loss_rng = derive_rng(seed, "sim-network-loss")

    def set_host_down(self, ip: IPv4Address) -> None:
        """Take a host off the network (crash/churn/outage)."""
        self._down_hosts.add(ip)

    def set_host_up(self, ip: IPv4Address) -> None:
        self._down_hosts.discard(ip)

    def is_host_down(self, ip: IPv4Address) -> bool:
        return ip in self._down_hosts

    def set_as_down(self, asn: int) -> None:
        """Fail a whole AS: traffic to or from it drops."""
        self._down_ases.add(asn)

    def set_as_up(self, asn: int) -> None:
        self._down_ases.discard(asn)

    def set_background_loss(self, rate: float) -> None:
        """Uniform message-loss probability applied to every delivery."""
        self._background_loss = rate

    def push_loss(self, rate: float, asn: Optional[int] = None) -> None:
        """Begin a loss burst (global, or scoped to one AS)."""
        self._active_loss.append((rate, asn))

    def pop_loss(self, rate: float, asn: Optional[int] = None) -> None:
        """End a previously pushed loss burst (no-op if absent)."""
        try:
            self._active_loss.remove((rate, asn))
        except ValueError:
            pass

    def loss_rate_between(self, src: Host, dst: Host) -> float:
        """Current per-leg loss probability for a (src, dst) pair."""
        rate = self._background_loss
        for burst_rate, asn in self._active_loss:
            if asn is None or asn == src.asn or asn == dst.asn:
                rate = max(rate, burst_rate)
        return rate

    def _drop_reason(self, src: Host, dst_ip: IPv4Address, rtt: Optional[float]) -> Optional[str]:
        """Why a message would drop right now, or None if deliverable.

        Checks run in a fixed order so drop accounting is deterministic;
        the loss draw happens only when a nonzero rate is in force.
        """
        dst = self._hosts.get(dst_ip)
        if dst is None or dst_ip not in self._handlers:
            return "unregistered"
        if dst_ip in self._down_hosts or src.ip in self._down_hosts:
            return "host-down"
        if dst.asn in self._down_ases or src.asn in self._down_ases:
            return "as-down"
        if rtt is None:
            return "unreachable"
        rate = self.loss_rate_between(src, dst)
        if rate > 0.0 and self._loss_rng.random() < rate:
            return "loss"
        return None

    def _record_drop(self, reason: str) -> None:
        self.dropped += 1
        self.dropped_by_reason[reason] += 1
        obs.counter("net.dropped").inc()

    # -- delivery -----------------------------------------------------------

    def send(
        self,
        src: Host,
        dst_ip: IPv4Address,
        category: str,
        payload: Any = None,
        trace=None,
    ) -> bool:
        """Send a message; returns False if it was dropped immediately.

        Every send is counted (overhead is measured at the sender, like
        the paper counting probe traffic), but delivery requires the
        destination to be registered, up, and reachable.  With a live
        ``trace`` span, the send is recorded as a ``net.send`` point on
        it (AS-tagged, so the analyzer can attribute message overhead
        per AS); tracing never changes delivery.
        """
        self.sent_by_category[category] += 1
        dst = self._hosts.get(dst_ip)
        rtt = self._latency.host_rtt_ms(src, dst) if dst is not None else None
        reason = self._drop_reason(src, dst_ip, rtt)
        if trace:
            trace.point(
                "net.send",
                self._sim.now_ms,
                category=category,
                src_as=src.asn,
                dst_as=dst.asn if dst is not None else None,
                dropped=reason,
            )
        if reason is not None:
            self._record_drop(reason)
            return False
        message = Message(src=src.ip, dst=dst_ip, category=category, payload=payload)
        self._sim.schedule(rtt / 2.0, lambda: self._handlers[dst_ip](message))
        return True

    def request(
        self,
        src: Host,
        dst_ip: IPv4Address,
        category: str,
        *,
        timeout_ms: float,
        on_response: Callable[[], None],
        on_timeout: Optional[Callable[[], None]] = None,
        rtt_ms: Optional[float] = None,
        payload: Any = None,
        trace=None,
    ) -> bool:
        """A request that expects an answer one round trip later.

        The request itself is counted under ``category`` (responses ride
        free, matching the paper's sender-side overhead accounting).  On
        success ``on_response`` fires after the full round-trip time
        (``rtt_ms`` when given — callers use it to model compound legs
        like caller→callee→callee's-surrogate — else the latency model's
        host RTT).  If the exchange cannot complete — destination down,
        its AS failed, no route, or a loss draw eats either leg —
        ``on_timeout`` fires after ``timeout_ms`` instead and the loss is
        visible in :attr:`timeouts_by_category`.  Returns True when the
        response was scheduled.

        Fault state is evaluated at send time (the deterministic choice;
        in-flight responses never race fault events).  With a live
        ``trace`` span a ``net.request`` child covers the exchange —
        closed at response time on success, or spanning the full timeout
        on failure with the drop reason — without scheduling any extra
        simulator events.
        """
        self.sent_by_category[category] += 1
        dst = self._hosts.get(dst_ip)
        rtt = rtt_ms
        if rtt is None and dst is not None:
            rtt = self._latency.host_rtt_ms(src, dst)
        reason = self._drop_reason(src, dst_ip, rtt)
        if reason is None and dst is not None:
            # Response leg rides the same conditions; sample loss again.
            rate = self.loss_rate_between(src, dst)
            if rate > 0.0 and self._loss_rng.random() < rate:
                reason = "loss"
        now = self._sim.now_ms
        net_span = (
            trace.child(
                "net.request",
                now,
                category=category,
                src_as=src.asn,
                dst_as=dst.asn if dst is not None else None,
            )
            if trace
            else None
        )
        if reason is not None:
            self._record_drop(reason)
            self.timeouts_by_category[category] += 1
            obs.counter("net.timeouts").inc()
            if net_span is not None:
                # The caller observes silence until its timer fires; the
                # span covers that whole wait (no extra sim event needed
                # — the end time is known at send time).
                net_span.end(now + timeout_ms, outcome="timeout", dropped=reason)
            if on_timeout is not None:
                self._sim.schedule(timeout_ms, on_timeout)
            return False
        message = Message(src=src.ip, dst=dst_ip, category=category, payload=payload)
        handler = self._handlers[dst_ip]

        def respond() -> None:
            handler(message)
            if net_span is not None:
                net_span.end(self._sim.now_ms, outcome="response", rtt_ms=round(rtt, 3))
            on_response()

        self._sim.schedule(rtt, respond)
        return True

    def one_way_ms(self, a: Host, b: Host) -> Optional[float]:
        """One-way delay between two registered hosts (None if unreachable)."""
        rtt = self._latency.host_rtt_ms(a, b)
        return None if rtt is None else rtt / 2.0

    def host(self, ip: IPv4Address) -> Optional[Host]:
        return self._hosts.get(ip)
