"""Simulated network: host-to-host message delivery over the latency model.

Control-plane messages are delivered after the one-way delay of the
direct policy path between the two hosts; messages to unreachable hosts
are silently dropped (like UDP into a failed AS).  Per-category message
counters feed the overhead metric (paper Fig. 18).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.measurement.latency import LatencyModel
from repro.netaddr import IPv4Address
from repro.sim.engine import Simulator
from repro.topology.population import Host


@dataclass(frozen=True)
class Message:
    """A control-plane message in flight."""

    src: IPv4Address
    dst: IPv4Address
    category: str
    payload: Any = None


Handler = Callable[[Message], None]


class SimNetwork:
    """Delivers messages between registered hosts through the simulator."""

    def __init__(self, sim: Simulator, latency: LatencyModel) -> None:
        self._sim = sim
        self._latency = latency
        self._hosts: Dict[IPv4Address, Host] = {}
        self._handlers: Dict[IPv4Address, Handler] = {}
        self.sent_by_category: Counter = Counter()
        self.dropped = 0

    @property
    def total_sent(self) -> int:
        return sum(self.sent_by_category.values())

    def register(self, host: Host, handler: Handler) -> None:
        """Attach a host with its message handler."""
        self._hosts[host.ip] = host
        self._handlers[host.ip] = handler

    def is_registered(self, ip: IPv4Address) -> bool:
        return ip in self._hosts

    def send(
        self,
        src: Host,
        dst_ip: IPv4Address,
        category: str,
        payload: Any = None,
    ) -> bool:
        """Send a message; returns False if it was dropped immediately.

        Every send is counted (overhead is measured at the sender, like
        the paper counting probe traffic), but delivery requires the
        destination to be registered and reachable.
        """
        self.sent_by_category[category] += 1
        dst = self._hosts.get(dst_ip)
        handler = self._handlers.get(dst_ip)
        if dst is None or handler is None:
            self.dropped += 1
            return False
        rtt = self._latency.host_rtt_ms(src, dst)
        if rtt is None:
            self.dropped += 1
            return False
        message = Message(src=src.ip, dst=dst_ip, category=category, payload=payload)
        self._sim.schedule(rtt / 2.0, lambda: handler(message))
        return True

    def one_way_ms(self, a: Host, b: Host) -> Optional[float]:
        """One-way delay between two registered hosts (None if unreachable)."""
        rtt = self._latency.host_rtt_ms(a, b)
        return None if rtt is None else rtt / 2.0

    def host(self, ip: IPv4Address) -> Optional[Host]:
        return self._hosts.get(ip)
