"""Discrete-event simulation substrate.

A minimal but real DES kernel: a clock + priority event queue
(:mod:`repro.sim.engine`), a message-passing network layer that delivers
host-to-host messages after the latency model's one-way delay
(:mod:`repro.sim.network`), and packet trace records
(:mod:`repro.sim.trace`) in the shape a pcap-based analyzer consumes —
the Skype study (paper Section 5) runs entirely on these pieces.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.network import Message, SimNetwork
from repro.sim.trace import PacketRecord, SessionTrace

__all__ = [
    "Event",
    "Message",
    "PacketRecord",
    "SessionTrace",
    "SimNetwork",
    "Simulator",
]
