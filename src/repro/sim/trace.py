"""Packet trace records — the simulated equivalent of WinDump captures.

The paper's Skype study collects packets at both end hosts and analyzes
only what a capture can see: timestamps, endpoint addresses/ports, sizes
and direction.  The Skype simulator emits these records, and the trace
analyzer (:mod:`repro.skype.analyzer`) consumes nothing else — keeping
the same information boundary as the original methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.netaddr import IPv4Address


@dataclass(frozen=True)
class PacketRecord:
    """One captured packet as seen at a capture point."""

    time_ms: float
    src_ip: IPv4Address
    src_port: int
    dst_ip: IPv4Address
    dst_port: int
    size_bytes: int
    kind: str  # "voice" | "probe" | "signal"

    def endpoints(self) -> Tuple[IPv4Address, IPv4Address]:
        return (self.src_ip, self.dst_ip)


@dataclass
class SessionTrace:
    """All packets captured at the two end hosts of one calling session."""

    session_id: int
    caller: IPv4Address
    callee: IPv4Address
    caller_packets: List[PacketRecord] = field(default_factory=list)
    callee_packets: List[PacketRecord] = field(default_factory=list)

    def record_at_caller(self, packet: PacketRecord) -> None:
        self.caller_packets.append(packet)

    def record_at_callee(self, packet: PacketRecord) -> None:
        self.callee_packets.append(packet)

    def all_packets(self) -> Iterator[PacketRecord]:
        """Both capture points merged, time-ordered."""
        merged = sorted(
            self.caller_packets + self.callee_packets, key=lambda p: p.time_ms
        )
        return iter(merged)

    def duration_ms(self) -> float:
        packets = self.caller_packets + self.callee_packets
        if not packets:
            return 0.0
        times = [p.time_ms for p in packets]
        return max(times) - min(times)

    def packets_sent_by(self, ip: IPv4Address) -> List[PacketRecord]:
        """Packets originated by one endpoint (seen at its capture point)."""
        source = self.caller_packets if ip == self.caller else self.callee_packets
        return [p for p in source if p.src_ip == ip]

    def contacted_ips(self, ip: IPv4Address) -> List[IPv4Address]:
        """Distinct destination IPs this endpoint sent voice/probe data to."""
        seen = []
        found = set()
        for packet in self.packets_sent_by(ip):
            if packet.dst_ip not in found:
                found.add(packet.dst_ip)
                seen.append(packet.dst_ip)
        return seen
