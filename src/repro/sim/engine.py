"""Event queue and simulated clock.

Events execute in (time, insertion order) — ties break FIFO so runs are
deterministic.  Time is in simulated milliseconds throughout the library
(latencies are natively in ms; seconds-scale results convert at the
edges).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ReproError


class SimulationError(ReproError):
    """The simulator was driven incorrectly (e.g. scheduling in the past)."""


@dataclass(frozen=True)
class Event:
    """A scheduled callback; compare by (time, seq) for heap ordering."""

    time_ms: float
    seq: int
    action: Callable[[], Any] = field(compare=False)

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ms, self.seq) < (other.time_ms, other.seq)


class Simulator:
    """A single-threaded discrete-event simulator."""

    def __init__(self) -> None:
        self._now_ms = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(self, delay_ms: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule into the past (delay {delay_ms})")
        event = Event(time_ms=self._now_ms + delay_ms, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time_ms: float, action: Callable[[], Any]) -> Event:
        """Schedule ``action`` at an absolute simulated time."""
        if time_ms < self._now_ms:
            raise SimulationError(
                f"cannot schedule at {time_ms} before now ({self._now_ms})"
            )
        event = Event(time_ms=time_ms, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now_ms = event.time_ms
        event.action()
        self._processed += 1
        return True

    def run(self, until_ms: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue, optionally bounded by time and/or event count.

        Returns the number of events executed by this call.  When
        ``until_ms`` is given, the clock is advanced to exactly
        ``until_ms`` at the end even if the queue drained earlier.
        """
        executed = 0
        while self._queue:
            if until_ms is not None and self._queue[0].time_ms > until_ms:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if until_ms is not None and self._now_ms < until_ms:
            self._now_ms = until_ms
        return executed
