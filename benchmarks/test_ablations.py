"""Ablation benches for ASAP's design choices (DESIGN.md Section 5).

Not figures from the paper, but quantifications of the design decisions
its text argues for: the k hop limit, the sizeT two-hop trigger, the
latT threshold, and the valley-free constraint itself.
"""

from repro.core import ASAPConfig
from repro.core.config import derive_k_hops
from repro.evaluation.ablations import (
    sweep_k,
    sweep_lat_threshold,
    sweep_size_threshold,
    sweep_valley_free,
)

SESSIONS = 2000
LATENT = 40


def _print(points, title):
    print()
    print(title)
    for point in points:
        print("  " + point.row())


def test_ablation_k_hops(benchmark, eval_scenario):
    points = benchmark.pedantic(
        lambda: sweep_k(
            eval_scenario,
            k_values=(3, 4, 5, 6),
            session_count=SESSIONS,
            latent_target=LATENT,
            max_latent=LATENT,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    _print(points, "=== ablation: close-cluster BFS hop limit k ===")
    derived = derive_k_hops(eval_scenario.matrices)
    print(f"  (paper's 90%-rule applied to this substrate derives k = {derived})")

    by_k = {p.config.k_hops: p for p in points}
    # Larger k can only widen the search: rescue rate must not drop.
    assert by_k[5].rescued_fraction >= by_k[3].rescued_fraction
    # ...but costs more maintenance probing.
    assert by_k[6].maintenance_messages >= by_k[3].maintenance_messages


def test_ablation_size_threshold(benchmark, eval_scenario):
    points = benchmark.pedantic(
        lambda: sweep_size_threshold(
            eval_scenario,
            size_values=(0, 300, 10**9),
            session_count=SESSIONS,
            latent_target=LATENT,
            max_latent=LATENT,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    _print(points, "=== ablation: two-hop trigger sizeT ===")

    no_two_hop, paper, always = points
    # sizeT = 0 disables two-hop search entirely.
    assert no_two_hop.two_hop_sessions == 0
    # Forcing two-hop always costs the most messages.
    assert always.messages_median >= paper.messages_median
    assert always.two_hop_sessions >= paper.two_hop_sessions


def test_ablation_lat_threshold(benchmark, eval_scenario):
    points = benchmark.pedantic(
        lambda: sweep_lat_threshold(
            eval_scenario,
            thresholds_ms=(250.0, 300.0, 400.0),
            session_count=SESSIONS,
            latent_target=LATENT,
            max_latent=LATENT,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    _print(points, "=== ablation: quality threshold latT ===")

    tight, paper, loose = points
    # The latent session set is fixed at 300 ms, so:
    # - a tighter protocol threshold accepts fewer relay paths;
    assert tight.quality_paths_median <= paper.quality_paths_median
    # - a looser threshold declares many of those sessions "good enough
    #   direct" and skips relay selection entirely (lower overhead, and
    #   fewer sessions with any relay found).
    assert loose.messages_median <= paper.messages_median
    assert loose.rescued_fraction <= paper.rescued_fraction


def test_ablation_valley_free(benchmark, eval_scenario):
    points = benchmark.pedantic(
        lambda: sweep_valley_free(
            eval_scenario,
            session_count=SESSIONS,
            latent_target=LATENT,
            max_latent=LATENT,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    _print(points, "=== ablation: valley-free constraint in the BFS ===")

    constrained, unconstrained = points
    # Dropping the constraint floods the graph: more maintenance probes
    # for (at best) similar quality — the cost of AS-obliviousness.
    assert unconstrained.maintenance_messages >= constrained.maintenance_messages
    print(
        f"  unconstrained probes / constrained probes = "
        f"{unconstrained.maintenance_messages / max(constrained.maintenance_messages, 1):.2f}"
    )
