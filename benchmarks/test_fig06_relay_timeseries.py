"""Fig. 6 — relay-path RTT time series of problematic sessions (Limit 1).

The paper plots, for three problematic sessions, the King-estimated RTT
of every probed relay path over time, showing major paths well above
the 300 ms requirement while better probed paths went unused.  We rank
our 14 sessions by major-path RTT and print the probe time series of
the worst three.
"""

import numpy as np

from repro.measurement.tools import KingEstimator
from repro.skype.analyzer import TraceAnalyzer


def test_fig06_relay_timeseries(benchmark, eval_scenario, section5_result):
    analyzer = TraceAnalyzer(
        eval_scenario.prefix_table,
        king=KingEstimator(eval_scenario.latency, seed=0),
        population=eval_scenario.population,
    )

    def series_for_all():
        out = []
        for result in section5_result.results:
            trace = result.trace
            out.append(
                (
                    trace.session_id,
                    analyzer.relay_time_series(trace, trace.caller, trace.callee),
                    result.direct_rtt_ms,
                )
            )
        return out

    all_series = benchmark.pedantic(series_for_all, rounds=1, iterations=1)

    # Rank sessions by their worst probed relay-path estimate.
    def worst_estimate(entry):
        _, series, _ = entry
        estimates = [e for _, _, e in series if e is not None]
        return max(estimates) if estimates else 0.0

    ranked = sorted(all_series, key=worst_estimate, reverse=True)[:3]

    print()
    print("=== Fig. 6 — probed relay-path RTT time series (3 worst sessions) ===")
    problematic = 0
    for session_id, series, direct in ranked:
        print(f"\n  session {session_id} (direct RTT "
              f"{'∞' if direct is None else f'{direct:.0f} ms'}):")
        shown = 0
        for t, relay_ip, estimate in series:
            if shown >= 12:
                print(f"    ... {len(series) - shown} more probes")
                break
            est = "no King answer" if estimate is None else f"{estimate:7.0f} ms"
            print(f"    t={t / 1000.0:7.1f} s  relay {str(relay_ip):<16} {est}")
            shown += 1
        estimates = [e for _, _, e in series if e is not None]
        if estimates and max(estimates) > 300.0:
            problematic += 1
            print(
                f"    probed paths above 300 ms: "
                f"{sum(1 for e in estimates if e > 300.0)} of {len(estimates)}"
            )

    # Limit 1's shape: problematic sessions probe paths above 300 ms.
    assert problematic >= 1
