"""Media-plane throughput baseline: frames/s through the full
codec → channel → jitter buffer → PLC → scorer pipeline, recorded as a
committed baseline in ``benchmarks/BENCH_media.json`` (a 20 ms-interval
voice stream is 50 frames/s per call, so these numbers bound how many
concurrent calls one process can score in real time)."""

import json
from pathlib import Path

from repro.media.bench import run_bench, validate_bench_document


def test_bench_media_pipeline():
    baseline = run_bench(duration_ms=30_000.0, repeats=3)
    assert validate_bench_document(baseline) == []
    (Path(__file__).parent / "BENCH_media.json").write_text(
        json.dumps(baseline, indent=2) + "\n"
    )
    # A call generates 50 frames/s; five figures through the full
    # pipeline means hundreds of concurrent calls scored in real time,
    # and the playout/score stages alone must be faster still.
    assert baseline["pipeline_frames_per_sec"] > 10_000, baseline
    assert baseline["playout_frames_per_sec"] > 50_000, baseline
    assert baseline["score_frames_per_sec"] > 10_000, baseline


def test_committed_baseline_schema_valid():
    path = Path(__file__).parent / "BENCH_media.json"
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert validate_bench_document(doc) == []
