"""Table 2 — multiple relay nodes probed inside one AS (Limit 2).

The paper's Table 2 shows two relays probed in session 8, both in
barak-online.net's AS, with near-identical relay path RTTs — evidence
that Skype ignores AS topology.  We print every same-AS probe group our
analyzer finds across the 14 sessions, with King-estimated path RTTs.
"""

from repro.measurement.latency import RELAY_DELAY_RTT_MS
from repro.measurement.tools import KingEstimator


def test_table2_same_as_probes(benchmark, eval_scenario, section5_result):
    rows = benchmark.pedantic(
        section5_result.same_as_table, rounds=1, iterations=1
    )
    king = KingEstimator(eval_scenario.latency, seed=0, non_response_rate=0.0)
    population = eval_scenario.population

    print()
    print("=== Table 2 — relay nodes probed in the same AS ===")
    printed = 0
    for session_id, asn, ips in rows:
        if printed >= 10:
            print(f"  ... {len(rows) - printed} more same-AS groups")
            break
        result = section5_result.results[session_id - 1]
        caller = population.by_ip(result.trace.caller)
        callee = population.by_ip(result.trace.callee)
        print(f"  session {session_id:>2}, AS {asn}:")
        for ip in ips[:4]:
            if ip in population:
                relay = population.by_ip(ip)
                leg1 = king.estimate(caller, relay)
                leg2 = king.estimate(relay, callee)
                rtt = (
                    f"{leg1 + leg2 + RELAY_DELAY_RTT_MS:7.0f} ms"
                    if leg1 is not None and leg2 is not None
                    else "   n/a"
                )
            else:
                rtt = "   n/a"
            print(f"      relay {str(ip):<16} relay-path RTT {rtt}")
        printed += 1

    # Limit 2's existence: AS-unaware probing lands in the same AS.
    assert rows, "expected same-AS probe groups across 14 sessions"
    # And the duplicate probes are largely redundant: same-AS relay
    # paths share fate (the paper's point).
    assert any(len(ips) >= 2 for _, _, ips in rows)
