"""Extension bench — the §6.3 traffic-load discussion, measured.

The paper argues ASAP's load profile is benign: the AS graph is small
(~800 KB), 90% of clusters hold ≤100 online hosts so one surrogate per
cluster suffices, and large clusters can elect multiple surrogates.  We
measure all three claims on the benchmark scenario.
"""

import numpy as np

from repro.core import ASAPConfig, ASAPSystem
from repro.evaluation.report import render_kv_table
from repro.evaluation.sessions import generate_workload


def test_ext_system_load(benchmark, eval_scenario):
    def run_load_study():
        system = ASAPSystem(eval_scenario, ASAPConfig(hosts_per_surrogate=100))
        workload = generate_workload(eval_scenario, 1500, seed=5, latent_target=40)
        for session in workload.latent()[:40]:
            system.call(session.caller, session.callee)
        # Join a slice of the population to load the bootstraps.
        for host in eval_scenario.population.hosts[:300]:
            try:
                system.join(host.ip)
            except Exception:
                pass  # hosts behind failed providers cannot join
        return system

    system = benchmark.pedantic(run_load_study, rounds=1, iterations=1)
    clusters = eval_scenario.clusters
    occupancy = clusters.occupancy_distribution()

    # Claim 1: AS graph is small.
    graph = eval_scenario.protocol_graph
    approx_graph_bytes = graph.edge_count() * 12  # (a, b, relationship)

    # Claim 2: cluster occupancy is heavy-tailed but small.
    frac_small = float(np.mean([size <= 100 for size in occupancy]))

    # Claim 3: multi-surrogate election for the big clusters.
    group_sizes = [
        len(system.surrogate_group(idx))
        for idx in range(eval_scenario.matrices.count)
    ]
    request_loads = [
        member.close_set_requests
        for idx in range(eval_scenario.matrices.count)
        for member in system.surrogate_group(idx)
    ]
    bootstrap_loads = [b.join_requests for b in system.bootstraps]

    print()
    print(
        render_kv_table(
            "=== extension — §6.3 system load ===",
            [
                ("AS graph edges", graph.edge_count()),
                ("approx AS graph size (KB)", approx_graph_bytes / 1024.0),
                ("clusters", len(occupancy)),
                ("largest cluster (hosts)", occupancy[0]),
                ("fraction of clusters ≤ 100 hosts", frac_small),
                ("clusters with multiple surrogates", sum(1 for g in group_sizes if g > 1)),
                ("max surrogates in one cluster", max(group_sizes)),
                ("max close-set requests on one surrogate", max(request_loads)),
                ("bootstrap join loads", tuple(bootstrap_loads)),
                ("total maintenance messages", system.maintenance_messages()),
            ],
        )
    )

    # §6.3's claims hold on the generated substrate.
    assert frac_small > 0.85
    assert max(group_sizes) >= 2          # big clusters elect extra surrogates
    assert approx_graph_bytes < 1_000_000  # "small" AS graph
    # Bootstrap load spreads across the fleet.
    assert min(bootstrap_loads) > 0
