"""Fig. 18 — relay-selection message overhead per session (Section 7.3).

Paper shape: DEDI/RAND/MIX pay a fixed probe cost per session (160 /
400 / 320 messages at 2 per probe); ASAP needs just 2 messages for
one-hop selection, more only when two-hop search runs — over 80% of
sessions stay under 300 messages.
"""

import numpy as np

from repro.evaluation.report import render_kv_table, render_series


def test_fig18_overhead(benchmark, section7_result):
    result = benchmark.pedantic(lambda: section7_result, rounds=1, iterations=1)
    methods = ("DEDI", "RAND", "MIX", "ASAP")

    print()
    print(
        render_series(
            "=== Fig. 18 — protocol messages per session ===",
            [(m, result.series(m, "messages")) for m in methods],
        )
    )

    asap = result.series("ASAP", "messages")
    print(
        render_kv_table(
            "ASAP overhead profile (paper: >80% of sessions ≤300 messages):",
            [
                ("P[ASAP ≤ 2 messages] (pure one-hop)", float(np.mean(asap <= 2))),
                ("P[ASAP ≤ 300 messages]", float(np.mean(asap <= 300))),
                ("max ASAP messages", float(asap.max())),
                ("median DEDI messages", float(np.median(result.series("DEDI", "messages")))),
                ("median RAND messages", float(np.median(result.series("RAND", "messages")))),
                ("median MIX messages", float(np.median(result.series("MIX", "messages")))),
            ],
        )
    )

    # Paper shape assertions.
    assert float(np.mean(asap <= 300)) > 0.8
    assert float(np.median(asap)) < float(np.median(result.series("DEDI", "messages")))
    # Baselines pay fixed budgets (2 messages per probe).
    assert float(np.median(result.series("RAND", "messages"))) > 300
