"""Figs. 15-16 — highest MOS per latent session (Section 7.2).

Paper shape (ITU E-model, G.729A+VAD, 0.5% loss): ASAP and OPT sessions
all reach MOS above 3.85; DEDI/RAND/MIX leave ~3% of sessions below
MOS 2.9 (unsatisfactory).
"""

import numpy as np

from repro.evaluation.report import render_kv_table, render_series


def test_fig15_16_mos(benchmark, section7_result):
    result = benchmark.pedantic(lambda: section7_result, rounds=1, iterations=1)
    methods = ("DEDI", "RAND", "MIX", "ASAP", "OPT")

    print()
    print(
        render_series(
            "=== Figs. 15-16 — highest MOS per session (G.729A+VAD, 0.5% loss) ===",
            [(m, result.series(m, "highest_mos")) for m in methods],
        )
    )

    def stats(m):
        series = result.series(m, "highest_mos")
        return (
            float(np.median(series)),
            float(np.mean(series < 2.9)),
            float(np.mean(series > 3.6)),
        )

    rows = []
    for m in methods:
        med, below, above = stats(m)
        rows.append((f"{m}: median / frac<2.9 / frac>3.6", f"{med:.2f} / {below:.2f} / {above:.2f}"))
    print(render_kv_table("summary:", rows))

    asap_med, asap_below, asap_above = stats("ASAP")
    opt_med, _, opt_above = stats("OPT")

    # ASAP tracks OPT.
    assert abs(asap_med - opt_med) < 0.25
    # The large majority of ASAP sessions are satisfied.
    assert asap_above > 0.9
    # MOS values are valid.
    for m in methods:
        series = result.series(m, "highest_mos")
        assert np.all((series >= 1.0) & (series <= 4.5))
