"""Figs. 13-14 — shortest relay RTT per latent session (Section 7.2).

Paper shape: ASAP's shortest RTTs track OPT's closely (all sessions
below ~115 ms in the paper's dataset); DEDI/RAND/MIX leave >5% of
sessions above 1 second.
"""

import numpy as np

from repro.evaluation.report import render_kv_table, render_series


def test_fig13_14_shortest_rtt(benchmark, section7_result):
    result = benchmark.pedantic(lambda: section7_result, rounds=1, iterations=1)
    methods = ("DEDI", "RAND", "MIX", "ASAP", "OPT")

    print()
    print(
        render_series(
            "=== Figs. 13-14 — shortest relay-path RTT per session (ms) ===",
            [(m, result.series(m, "best_rtt_ms")) for m in methods],
        )
    )

    def med(m):
        series = result.series(m, "best_rtt_ms")
        finite = series[np.isfinite(series)]
        return float(np.median(finite)) if finite.size else float("inf")

    def frac_rescued(m):
        series = result.series(m, "best_rtt_ms")
        return float(np.mean(np.isfinite(series) & (series < 300.0)))

    print(
        render_kv_table(
            "ASAP vs OPT closeness (paper: ASAP ≈ OPT):",
            [
                ("median OPT (ms)", med("OPT")),
                ("median ASAP (ms)", med("ASAP")),
                ("ASAP/OPT median ratio", med("ASAP") / med("OPT")),
                ("ASAP sessions rescued (<300 ms)", frac_rescued("ASAP")),
                ("OPT sessions rescued", frac_rescued("OPT")),
                ("best baseline rescued", max(frac_rescued(m) for m in ("DEDI", "RAND", "MIX"))),
            ],
        )
    )

    # ASAP tracks the offline optimum closely.
    assert med("ASAP") <= 1.25 * med("OPT")
    # OPT is a valid lower bound.
    for m in ("DEDI", "RAND", "MIX", "ASAP"):
        assert med("OPT") <= med(m) + 1e-9
    # ASAP rescues the overwhelming majority of latent sessions.
    assert frac_rescued("ASAP") > 0.9
