"""Extension bench — path switching and path diversity over ASAP relays.

Section 6.2: "Techniques such as path diversity ([15, 19]) and path
switching [20] can be used in combination with ASAP."  We run
packet-level calls over the relay candidates select-close-relay returns
under time-varying congestion, comparing static-path, switching, and
diversity transports.
"""

import numpy as np

from repro.core import ASAPConfig, ASAPSystem
from repro.core.config import derive_k_hops
from repro.evaluation.report import render_kv_table
from repro.evaluation.sessions import generate_workload
from repro.voip.call import CallConfig, VoiceCall, call_paths_from_selection


def _run_calls(eval_scenario, use_switching, use_diversity, sessions, use_fec=False):
    outcomes = []
    matrices = eval_scenario.matrices
    for index, (selection, a, b) in enumerate(sessions):
        paths = call_paths_from_selection(selection, matrices, a, b, seed=index)
        if not paths:
            continue
        call = VoiceCall(
            paths,
            CallConfig(
                windows=20,
                use_switching=use_switching,
                use_diversity=use_diversity,
                use_fec=use_fec,
                seed=index,
            ),
        )
        outcomes.append(call.run())
    return outcomes


def test_ext_voice_transport(benchmark, eval_scenario):
    system = ASAPSystem(
        eval_scenario, ASAPConfig(k_hops=derive_k_hops(eval_scenario.matrices))
    )
    workload = generate_workload(eval_scenario, 2000, seed=7, latent_target=25)
    sessions = []
    for session in workload.latent()[:25]:
        call = system.call(session.caller, session.callee)
        if call.selection is not None and call.selection.one_hop:
            sessions.append(
                (call.selection, session.caller_cluster, session.callee_cluster)
            )

    results = benchmark.pedantic(
        lambda: {
            "static": _run_calls(eval_scenario, False, False, sessions),
            "switching": _run_calls(eval_scenario, True, False, sessions),
            "fec": _run_calls(eval_scenario, False, False, sessions, use_fec=True),
            "diversity": _run_calls(eval_scenario, False, True, sessions),
            "both": _run_calls(eval_scenario, True, True, sessions),
        },
        rounds=1,
        iterations=1,
    )

    print()
    rows = []
    summary = {}
    for name, outcomes in results.items():
        mean_mos = float(np.mean([o.mean_mos for o in outcomes]))
        min_mos = float(np.mean([o.min_mos for o in outcomes]))
        satisfied = float(np.mean([o.satisfied_fraction for o in outcomes]))
        switches = float(np.mean([o.switches for o in outcomes]))
        summary[name] = (mean_mos, min_mos, satisfied)
        rows.append(
            (
                f"{name}: mean/min MOS, satisfied, switches",
                f"{mean_mos:.2f} / {min_mos:.2f} / {satisfied:.2f} / {switches:.1f}",
            )
        )
    print(render_kv_table("=== extension — voice transport over ASAP relays ===", rows))

    # Diversity masks loss on either path and is the decisive win;
    # switching helps against congestion episodes (it cannot fix loss
    # that is common to every candidate path) — mean MOS must not drop.
    assert summary["diversity"][2] >= summary["static"][2] + 0.15  # satisfied time
    assert summary["diversity"][1] >= summary["static"][1]         # min MOS
    assert summary["both"][2] >= summary["static"][2] + 0.15
    assert summary["switching"][0] >= summary["static"][0] - 0.02  # mean MOS
    # FEC sits between: better than static, at most diversity + noise
    # (it spends 1/group_size the redundant bandwidth).
    assert summary["fec"][0] >= summary["static"][0]
    assert summary["fec"][2] <= summary["diversity"][2] + 0.05
