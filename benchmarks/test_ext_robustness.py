"""Extension bench — robustness of the headline results.

Two axes the paper's single-snapshot evaluation could not explore:

- **seeds**: rebuild the world three times and report mean ± std of the
  headline numbers (is the reproduction a lucky draw?);
- **topology families**: rerun the full pipeline on Barabási–Albert and
  Waxman topologies.  The method *ordering* (ASAP ≫ baselines, ASAP ≈
  OPT) must hold everywhere; the *absolute rescue rate* is expected to
  drop on Waxman — its latent sessions are caused by geometric distance
  rather than routing pathology, and no relay can beat physics.  That
  contrast is itself a finding: the paper's "relays rescue everything"
  presumes routing-induced latency, which the real Internet (and our
  tiered/BA families) exhibit.
"""

from dataclasses import replace

from repro.evaluation.report import render_kv_table
from repro.evaluation.robustness import family_study, seed_study, summarize_across
from repro.scenario import ScenarioConfig
from repro.topology import PopulationConfig, TopologyConfig

STUDY_CONFIG = ScenarioConfig(
    topology=TopologyConfig(tier1_count=5, tier2_count=40, tier3_count=250),
    population=PopulationConfig(host_count=2000),
)


def test_ext_seed_robustness(benchmark):
    results = benchmark.pedantic(
        lambda: seed_study(
            STUDY_CONFIG, seeds=(0, 1, 2), session_count=1200, latent_target=30
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== extension — headline metrics across seeds ===")
    for metrics in results:
        print("  " + metrics.row())
    print(render_kv_table("aggregate:", summarize_across(results)))

    # The headline ordering holds at every seed.
    for metrics in results:
        assert metrics.rescued_by_opt_one_hop > 0.9
        assert metrics.asap_over_best_baseline > 5.0
        assert metrics.asap_rescue_rate > 0.8
        assert 0.8 < metrics.asap_over_opt_rtt < 1.3


def test_ext_family_robustness(benchmark):
    results = benchmark.pedantic(
        lambda: family_study(
            STUDY_CONFIG, as_count=300, session_count=1200, latent_target=30, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== extension — headline metrics across topology families ===")
    for metrics in results:
        print("  " + metrics.row())

    by_label = {m.label: m for m in results}
    # ASAP beats the baselines on every family.
    for metrics in results:
        assert metrics.asap_over_best_baseline > 2.0
    # Routing-induced-latency families are highly rescuable...
    assert by_label["tiered"].rescued_by_opt_one_hop > 0.9
    assert by_label["barabasi-albert"].rescued_by_opt_one_hop > 0.8
    # ...while Waxman's distance-induced latency is not (the contrast
    # that shows what the paper's result depends on).
    assert (
        by_label["waxman"].rescued_by_opt_one_hop
        < by_label["tiered"].rescued_by_opt_one_hop
    )
