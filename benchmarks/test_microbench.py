"""Micro-benchmarks of the hot substrate paths (true pytest-benchmark
timings, multiple rounds): prefix-trie LPM, policy-tree construction,
valley-free BFS, delegate-matrix assembly (serial and parallel), batch
session evaluation, and E-model scoring."""

import os
import time

import numpy as np

from repro.bgp.routing import PolicyRouter
from repro.core import ASAPConfig
from repro.core.close_cluster import construct_close_cluster_set
from repro.measurement.matrix import compute_delegate_matrices
from repro.netaddr import IPv4Address
from repro.voip import EModel


def test_bench_prefix_trie_lpm(benchmark, eval_scenario):
    table = eval_scenario.prefix_table
    ips = [h.ip for h in eval_scenario.population.hosts[:2000]]

    def lookup_all():
        hits = 0
        for ip in ips:
            if table.lookup(ip) is not None:
                hits += 1
        return hits

    hits = benchmark(lookup_all)
    assert hits == len(ips)


def test_bench_policy_tree_build(benchmark, eval_scenario):
    graph = eval_scenario.topology.graph
    stubs = [a for a in graph.ases()][-50:]
    state = {"i": 0}

    def build_tree():
        # A fresh router each call so the cache never hides the work.
        router = PolicyRouter(graph, cache_size=1)
        dst = stubs[state["i"] % len(stubs)]
        state["i"] += 1
        return router.tree(dst)

    tree = benchmark(build_tree)
    assert len(tree.route_class) > 0.5 * len(graph)


def test_bench_valley_free_ball(benchmark, eval_scenario):
    graph = eval_scenario.topology.graph
    start = eval_scenario.topology.stub_ases()[0]
    ball = benchmark(lambda: graph.valley_free_ball(start, 4))
    assert len(ball) > 1


def test_bench_close_set_construction(benchmark, eval_scenario):
    matrices = eval_scenario.matrices
    clusters_by_as = {}
    for idx, asn in enumerate(matrices.asn_of):
        clusters_by_as.setdefault(int(asn), []).append(idx)
    own = 0
    own_as = int(matrices.asn_of[own])

    def lat(a, b):
        value = float(matrices.rtt_ms[a, b])
        return value if np.isfinite(value) else None

    def loss(a, b):
        return float(matrices.loss[a, b])

    result = benchmark(
        lambda: construct_close_cluster_set(
            own,
            own_as,
            eval_scenario.protocol_graph,
            lambda asn: clusters_by_as.get(asn, []),
            lat,
            loss,
            ASAPConfig(k_hops=4),
        )
    )
    assert len(result) >= 1


def test_bench_delegate_matrix(benchmark, eval_scenario):
    # Matrix assembly over a subset of clusters (full matrix is the
    # session fixture's job; this measures the per-destination walks).
    from repro.scenario import subsample_scenario

    small = subsample_scenario(eval_scenario, 0.15, seed=0)
    matrices = benchmark.pedantic(
        lambda: compute_delegate_matrices(small.latency, small.clusters),
        rounds=1,
        iterations=1,
    )
    assert matrices.count == len(small.clusters)


def test_bench_matrix_parallel_vs_serial(eval_scenario):
    """Serial vs all-CPU matrix assembly on a real scenario: bit-identical
    output, and faster on multi-CPU hardware.  (The committed baseline
    JSON is written by ``test_matrix_scale.py``; this guards the full
    ``compute_delegate_matrices`` path end to end.)"""
    from repro.measurement import matrix as matrix_module
    from repro.scenario import subsample_scenario

    small = subsample_scenario(eval_scenario, 0.25, seed=0)
    workers = os.cpu_count() or 1

    # Untimed warmup: the latency model memoizes policy trees on first
    # use, and both timed runs (plus fork children, via copy-on-write)
    # must see the same warmed state for the comparison to be fair.
    compute_delegate_matrices(small.latency, small.clusters, workers=1)

    t0 = time.perf_counter()
    serial = compute_delegate_matrices(small.latency, small.clusters, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = compute_delegate_matrices(
        small.latency, small.clusters, workers=max(2, workers)
    )
    parallel_s = time.perf_counter() - t0

    # Bit-for-bit parity is unconditional — the parallel path is only a
    # scheduling change, never a numeric one.
    assert np.array_equal(serial.rtt_ms, parallel.rtt_ms)
    assert np.array_equal(serial.loss, parallel.loss)
    assert np.array_equal(serial.as_hops, parallel.as_hops)

    # The run leaves its chunk plan behind for the scale benchmarks.
    stats = matrix_module.last_parallel_stats()
    assert stats is not None
    assert sum(stats["chunk_sizes"]) == serial.count

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    # Speedup is only attainable with real cores behind the pool; on a
    # single-CPU machine the fork overhead makes parallel a wash, so the
    # throughput assertion is conditional on the hardware.
    if workers >= 2:
        assert speedup >= 1.0, (serial_s, parallel_s, stats)


def test_bench_batch_session_eval(benchmark, eval_scenario, workload):
    """Vectorized evaluate_sessions over every latent pair (the section 7
    inner loop) for the costliest baseline, DEDI."""
    from repro.baselines import BaselineConfig, DEDIMethod

    latent = workload.latent(300.0)
    pairs = [(s.caller_cluster, s.callee_cluster) for s in latent]
    session_ids = [s.session_id for s in latent]
    matrices = eval_scenario.matrices
    engine = DEDIMethod(eval_scenario.topology.graph, BaselineConfig())
    results = benchmark(
        lambda: engine.evaluate_sessions(matrices, pairs, session_ids=session_ids)
    )
    assert len(results) == len(pairs)
    # Parity with the per-session reference loop on a spot-checked slice.
    for k in (0, len(pairs) // 2, len(pairs) - 1):
        loop = engine.evaluate_session(matrices, *pairs[k], session_ids[k])
        assert results[k].quality_paths == loop.quality_paths
        assert results[k].best_rtt_ms == loop.best_rtt_ms


def test_bench_emodel(benchmark):
    model = EModel()
    rtts = np.linspace(20.0, 900.0, 5000)

    def score_all():
        return sum(model.mos_from_rtt(r, 0.005) for r in rtts)

    total = benchmark(score_all)
    assert total > 0
