"""Micro-benchmark of the wire codec: encode/decode throughput on the
messages a call actually exchanges, recorded as a committed baseline in
``benchmarks/BENCH_codec.json`` (the codec sits under every media
packet, so a regression here taxes the whole service layer)."""

import json
import time
from pathlib import Path

from repro.net.codec import (
    CloseSetQuery,
    CloseSetReply,
    FrameDecoder,
    Join,
    Keepalive,
    Media,
    Ping,
    RelaySetup,
    REQUEST,
    decode_frame,
    encode_frame,
)
from repro.netaddr import IPv4Address

#: The message mix of one call: control plane (setup) plus data plane
#: (a media frame with a typical 20 ms voice payload).
_CALL_MIX = [
    Join(ip=IPv4Address(0x0A010203), role=0, cluster=-1, wire_addr="127.0.0.1:9700"),
    Ping(token=42),
    CloseSetQuery(cluster=17, requester_ip=IPv4Address(0x0A010203)),
    CloseSetReply(owner=17, entries=tuple((c, 10.0 * c) for c in range(30))),
    RelaySetup(call_id=7, caller_ip=IPv4Address(1), callee_ip=IPv4Address(2)),
    Media(call_id=7, seq=1, payload=bytes(160)),
    Keepalive(call_id=7, seq=1),
]


def _time_ops(fn, n: int) -> float:
    """Ops per second of ``fn`` run ``n`` times (one untimed warmup)."""
    fn()
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return n / (time.perf_counter() - t0)


def test_bench_codec_round_trip():
    rounds = 2_000
    frames = [encode_frame(m, REQUEST, i + 1) for i, m in enumerate(_CALL_MIX)]
    wire_bytes = sum(len(f) for f in frames)

    def encode_all():
        for index, message in enumerate(_CALL_MIX):
            encode_frame(message, REQUEST, index + 1)

    def decode_all():
        for frame in frames:
            decode_frame(frame)

    def stream_all():
        decoder = FrameDecoder()
        count = 0
        for frame in frames:
            count += len(decoder.feed(frame))
        return count

    encode_ops = _time_ops(encode_all, rounds) * len(_CALL_MIX)
    decode_ops = _time_ops(decode_all, rounds) * len(_CALL_MIX)
    stream_ops = _time_ops(stream_all, rounds) * len(_CALL_MIX)
    assert stream_all() == len(_CALL_MIX)

    media = encode_frame(Media(call_id=7, seq=1, payload=bytes(160)))
    media_ops = _time_ops(lambda: decode_frame(media), 20_000)

    baseline = {
        "message_mix": len(_CALL_MIX),
        "wire_bytes_per_mix": wire_bytes,
        "encode_msgs_per_sec": round(encode_ops),
        "decode_msgs_per_sec": round(decode_ops),
        "stream_decode_msgs_per_sec": round(stream_ops),
        "media_decode_per_sec": round(media_ops),
    }
    (Path(__file__).parent / "BENCH_codec.json").write_text(
        json.dumps(baseline, indent=2) + "\n"
    )
    # A 50 ms-interval voice stream needs 20 media frames/s per call;
    # six figures of decodes per second keeps the codec irrelevant to
    # capacity planning even at thousands of concurrent calls.
    assert decode_ops > 50_000, baseline
    assert encode_ops > 50_000, baseline
