"""Extension bench — ASAP under membership churn.

P2P membership is never static; Skype's supernode population churns
constantly.  This bench drives the event-driven runtime with a churn
process — hosts (including surrogates) leaving mid-experiment — while
call setups keep arriving, and checks the protocol degrades gracefully:
calls keep completing, surrogate hand-offs happen, and relay quality
stays near the churn-free baseline.
"""

import numpy as np

from repro.core import ASAPConfig
from repro.core.config import derive_k_hops
from repro.core.runtime import ASAPRuntime
from repro.evaluation.report import render_kv_table
from repro.evaluation.sessions import generate_workload
from repro.util.rng import derive_rng


def test_ext_churn(benchmark, eval_scenario):
    workload = generate_workload(eval_scenario, 2000, seed=11, latent_target=25)
    latent = workload.latent()[:25]
    config = ASAPConfig(k_hops=derive_k_hops(eval_scenario.matrices))

    def run_with_churn():
        runtime = ASAPRuntime(eval_scenario, config)
        rng = derive_rng(11, "churn-bench")
        # Churn: 120 random hosts leave over the first 60 simulated
        # seconds — including, deliberately, the caller-side surrogates
        # of the first ten sessions.
        hosts = eval_scenario.population.hosts
        for i, idx in enumerate(rng.choice(len(hosts), size=120, replace=False)):
            runtime.schedule_leave(hosts[int(idx)].ip, at_ms=float(500 * i))
        for session in latent[:10]:
            surrogate_ip = runtime.system.surrogate(session.caller_cluster).ip
            runtime.schedule_leave(surrogate_ip, at_ms=1_000.0)
        for offset, session in enumerate(latent):
            runtime.schedule_call(
                session.caller, session.callee, at_ms=5_000.0 + 2_000.0 * offset
            )
        runtime.run()
        return runtime

    runtime = benchmark.pedantic(run_with_churn, rounds=1, iterations=1)

    setups = runtime.setup_times_ms()
    sessions_with_relay = [
        r for r in runtime.call_setups
        if r.session is not None and r.session.best_relay_rtt_ms is not None
    ]
    rescued = sum(
        1 for r in sessions_with_relay if r.session.best_relay_rtt_ms < 300.0
    )

    print()
    print(
        render_kv_table(
            "=== extension — ASAP under membership churn ===",
            [
                ("hosts churned out", 120 + 10),
                ("surrogate hand-offs", len(runtime.surrogate_failures)),
                ("calls scheduled", len(latent)),
                ("call setups completed", len(setups)),
                ("median setup (ms)", float(np.median(setups)) if setups else float("nan")),
                ("sessions rescued (<300 ms)", rescued),
            ],
        )
    )

    # Churn must not break call processing.
    assert len(setups) >= len(latent) - 2  # callers/callees may churn out
    # Deliberately-killed surrogates were handed off.
    assert len(runtime.surrogate_failures) >= 5
    # Relay quality survives churn.
    assert rescued >= 0.8 * len(sessions_with_relay)
