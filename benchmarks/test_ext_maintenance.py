"""Extension bench — close-set staleness and refresh under new weather.

The paper's evaluation is a single measurement snapshot; operationally,
surrogates must refresh their close sets as congestion moves around.
This bench re-weathers the benchmark world and measures (a) how stale
the old close sets become, and (b) what selection quality stale vs
refreshed sets deliver on the same latent sessions.
"""

import numpy as np

from repro.core.maintenance import run_maintenance_study, reweather, staleness
from repro.core.protocol import ASAPSystem
from repro.core.config import ASAPConfig, derive_k_hops
from repro.evaluation.report import render_kv_table
from repro.evaluation.sessions import generate_workload


def test_ext_maintenance(benchmark, eval_scenario):
    workload = generate_workload(eval_scenario, 2000, seed=9, latent_target=30)
    sessions = workload.latent()[:30]

    outcomes, reports = benchmark.pedantic(
        lambda: run_maintenance_study(eval_scenario, sessions, weather_seed=17),
        rounds=1,
        iterations=1,
    )

    by_policy = {o.policy: o for o in outcomes}
    violation_rates = [r.violation_rate for r in reports if r.entries]
    missing = [r.missing for r in reports]

    print()
    print(
        render_kv_table(
            "=== extension — close-set staleness after a weather change ===",
            [
                ("sessions evaluated", len(sessions)),
                ("mean staleness violation rate", float(np.mean(violation_rates)) if violation_rates else 0.0),
                ("mean newly-qualifying clusters missed", float(np.mean(missing)) if missing else 0.0),
                ("stale: rescued fraction", by_policy["stale"].rescued_fraction),
                ("stale: median realized RTT (ms)", by_policy["stale"].median_best_rtt_ms),
                ("refreshed: rescued fraction", by_policy["refreshed"].rescued_fraction),
                ("refreshed: median realized RTT (ms)", by_policy["refreshed"].median_best_rtt_ms),
                ("refresh probe cost (messages)", by_policy["refreshed"].maintenance_messages),
            ],
        )
    )

    # Refreshed sets can only help (same sessions, same fresh weather).
    assert (
        by_policy["refreshed"].rescued_fraction
        >= by_policy["stale"].rescued_fraction - 1e-9
    )
    # Staleness is real: some entries violate or some clusters are missed.
    assert (violation_rates and max(violation_rates) > 0) or max(missing, default=0) > 0


def test_ext_substrate_realism(benchmark, eval_scenario):
    """Prints the DESIGN.md §2 substitution-validity report."""
    from repro.topology.validation import validate_latency, validate_topology

    def measure():
        return (
            validate_topology(eval_scenario.topology, sample_pairs=300, seed=0),
            validate_latency(eval_scenario, sample_pairs=300, seed=0),
        )

    topo_report, lat_report = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_kv_table("=== substrate realism: topology ===", topo_report.rows()))
    print(render_kv_table("=== substrate realism: latency ===", lat_report.rows()))

    assert topo_report.valley_free_rate == 1.0
    assert topo_report.reachable_rate > 0.9
    assert topo_report.degree_tail_ratio > 3.0
    assert lat_report.hop_latency_correlation > 0.2
    assert lat_report.policy_detour_fraction > 0.02
