"""Extension bench — relay load concentration: ASAP's candidate breadth
vs a fixed dedicated fleet.

§6.2's final pick weighs "traffic load conditions … of the close relay
nodes".  With many concurrent calls, ASAP's 10²-10⁴ candidate IPs per
session let a least-loaded pick spread the relaying thinly; a DEDI-style
fixed fleet funnels every session through the same 80 nodes.  We run the
same concurrent latent sessions through both assignment policies and
compare the load distributions.
"""

from collections import Counter

import numpy as np

from repro.core import ASAPConfig, ASAPSystem
from repro.core.assignment import RelayAssignmentService
from repro.core.config import derive_k_hops
from repro.baselines import BaselineConfig, DEDIMethod
from repro.evaluation.report import render_kv_table
from repro.evaluation.sessions import generate_workload


def test_ext_relay_load(benchmark, eval_scenario):
    system = ASAPSystem(
        eval_scenario, ASAPConfig(k_hops=derive_k_hops(eval_scenario.matrices))
    )
    workload = generate_workload(eval_scenario, 3000, seed=13, latent_target=120)
    latent = workload.latent()[:120]

    def run_assignment():
        service = RelayAssignmentService(
            eval_scenario.clusters, eval_scenario.matrices, seed=13
        )
        dedi = DEDIMethod(eval_scenario.topology.graph, BaselineConfig())
        dedi_load: Counter = Counter()
        assigned = 0
        for sid, session in enumerate(latent):
            call = system.call(session.caller, session.callee)
            if call.selection is not None and call.selection.one_hop:
                if service.assign(sid, call.selection) is not None:
                    assigned += 1
            # DEDI: the session goes through its best dedicated node.
            rtt = eval_scenario.matrices.rtt_ms
            fleet = dedi.fleet_for(eval_scenario.matrices)
            paths = [
                (float(rtt[session.caller_cluster, c] + rtt[c, session.callee_cluster]), c)
                for c in fleet
                if c not in (session.caller_cluster, session.callee_cluster)
            ]
            paths = [(v, c) for v, c in paths if np.isfinite(v)]
            if paths:
                dedi_load[min(paths)[1]] += 1
        return service, dedi_load, assigned

    service, dedi_load, assigned = benchmark.pedantic(
        run_assignment, rounds=1, iterations=1
    )

    asap_dist = service.load_distribution()
    dedi_dist = sorted(dedi_load.values(), reverse=True)
    print()
    print(
        render_kv_table(
            "=== extension — relay load concentration (120 concurrent sessions) ===",
            [
                ("ASAP sessions assigned", assigned),
                ("ASAP distinct relay IPs used", service.distinct_relays()),
                ("ASAP max sessions on one relay", service.max_load()),
                ("DEDI distinct dedicated nodes used", len(dedi_load)),
                ("DEDI max sessions on one node", max(dedi_dist, default=0)),
                ("ASAP load top-5", tuple(asap_dist[:5])),
                ("DEDI load top-5", tuple(dedi_dist[:5])),
            ],
        )
    )

    # ASAP's breadth spreads load: far more distinct relays, far lower
    # peak load than the fixed fleet.
    assert service.distinct_relays() > len(dedi_load)
    assert service.max_load() < max(dedi_dist, default=10**9)
    assert assigned >= 0.9 * len(latent)
