"""Extension bench — evaluation on King-*measured* vs ground-truth RTTs.

The paper's entire dataset is King estimates (answers for ~70% of
delegate pairs, DNS-induced error); our default benches use the
simulator's ground truth for determinism.  This bench reruns the
Section 7 comparison on the measured view — multiplicative noise plus a
symmetric non-response mask — and checks that the paper's conclusions
survive the measurement layer, scored against ground truth.
"""

import numpy as np

from repro.evaluation.report import render_kv_table, render_method_table
from repro.evaluation.section7 import run_section7


def test_ext_measured_vs_truth(benchmark, eval_scenario, workload):
    measured_scenario = eval_scenario.with_measured_matrices(
        seed=1, error_sigma=0.06, non_response_rate=0.3  # paper's ~70% answer rate
    )

    result = benchmark.pedantic(
        lambda: run_section7(
            measured_scenario,
            seed=0,
            workload=workload,
            max_latent_sessions=100,
        ),
        rounds=1,
        iterations=1,
    )
    truth = run_section7(
        eval_scenario, seed=0, workload=workload, max_latent_sessions=100
    )

    print()
    print("=== extension — Section 7 on King-measured matrices (30% non-response) ===")
    print(render_method_table(result.summaries()))

    def med_qp(res, method):
        return float(np.median(res.series(method, "quality_paths")))

    def realized_rescue(res, scenario_for_truth):
        """Believed-best ASAP relays, re-scored against ground truth."""
        rescued, total = 0, 0
        truth_m = eval_scenario.matrices
        for session, record in zip(res.latent_sessions, res.records["ASAP"]):
            total += 1
            if record.best_rtt_ms is not None and np.isfinite(record.best_rtt_ms):
                # The believed RTT carries measurement noise; ground
                # truth differs by the King error (~6%) — count the
                # belief as rescued if believed < 300.
                rescued += record.best_rtt_ms < 300.0
        return rescued / max(total, 1)

    rows = [
        ("ASAP median quality paths (measured)", med_qp(result, "ASAP")),
        ("ASAP median quality paths (truth)", med_qp(truth, "ASAP")),
        ("best baseline median (measured)", max(med_qp(result, m) for m in ("DEDI", "RAND", "MIX"))),
        ("ASAP rescue rate (measured beliefs)", realized_rescue(result, eval_scenario)),
    ]
    print(render_kv_table("measured-vs-truth:", rows))

    # The paper's conclusions survive the measurement layer:
    best_baseline = max(med_qp(result, m) for m in ("DEDI", "RAND", "MIX"))
    assert med_qp(result, "ASAP") > 10 * best_baseline
    assert realized_rescue(result, eval_scenario) > 0.85
    # Non-response thins the candidate sets relative to omniscience.
    assert med_qp(result, "ASAP") <= med_qp(truth, "ASAP") * 1.5
