"""Fig. 7 — Skype stabilization time and probing overhead (Limits 3-4).

(a) stabilization time per session — the paper saw up to 329 s;
(b) total relay nodes probed — many sessions above 20, up to 59;
(c) nodes probed after stabilization — mostly 3-6.
"""

import numpy as np

from repro.evaluation.report import render_kv_table


def test_fig07_skype_overhead(benchmark, section5_result):
    study = benchmark.pedantic(lambda: section5_result, rounds=1, iterations=1)

    stabilization = study.stabilization_seconds()
    probed = study.probed_counts()
    after = study.probed_after_stabilization()

    print()
    print("=== Fig. 7(a) — stabilization time (s) per session ===")
    print("  " + "  ".join(f"{s:6.1f}" for s in stabilization))
    print("=== Fig. 7(b) — total probed relay nodes per session ===")
    print("  " + "  ".join(f"{p:6d}" for p in probed))
    print("=== Fig. 7(c) — probed nodes after stabilization ===")
    print("  " + "  ".join(f"{p:6d}" for p in after))

    print(
        render_kv_table(
            "\nsummary (paper: stab. up to 329 s; >20 probes common; 3-6 after):",
            [
                ("max stabilization (s)", max(stabilization)),
                ("sessions with stabilization > 5 s", sum(1 for s in stabilization if s > 5.0)),
                ("max probed nodes", max(probed)),
                ("sessions probing > 20 nodes", sum(1 for p in probed if p > 20)),
                ("median probed after stabilization", float(np.median(after))),
            ],
        )
    )

    # Limit 3: relay bounce delays stabilization in some sessions.
    assert max(stabilization) > 1.0
    # Limit 4: heavy probing in the problematic sessions.
    assert max(probed) > 20
    # Background probing continues after stabilization.
    assert max(after) >= 3
