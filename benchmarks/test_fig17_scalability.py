"""Fig. 17 — scalability across population sizes (Section 7.3).

The paper compares 103,625 vs 23,366 online hosts (ratio 4.434): after
dividing by the ratio, ASAP's quality-path CDF keeps its shape while
DEDI/RAND/MIX stay at their fixed absolute counts (≤30 per-capita-
normalized quality paths).  We re-run the identical latent calling
pattern on the full population and on a 1/4.434 subsample.
"""

import numpy as np

from repro.evaluation.report import render_kv_table, render_series
from repro.evaluation.scalability import PAPER_POPULATION_RATIO, run_scalability


def test_fig17_scalability(benchmark, eval_scenario):
    result = benchmark.pedantic(
        lambda: run_scalability(
            eval_scenario,
            ratio=PAPER_POPULATION_RATIO,
            session_count=3000,
            latent_target=80,
            max_latent_sessions=80,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    methods = ("DEDI", "RAND", "MIX", "ASAP")
    print()
    print(
        render_kv_table(
            "=== Fig. 17 — populations ===",
            [
                ("large population", result.large_population),
                ("small population", result.small_population),
                ("ratio", result.ratio),
            ],
        )
    )
    print(
        render_series(
            "\nsmall-population one-hop quality paths:",
            [(m, result.small.series(m, "one_hop_quality_paths")) for m in methods],
        )
    )
    print(
        render_series(
            "\nlarge-population one-hop quality paths ÷ ratio:",
            [(m, result.normalized_large_series(m)) for m in methods],
        )
    )
    print(
        render_kv_table(
            "\nper-session scaling factor (scalable ⇒ ≈ ratio; fixed ⇒ ≈ 1):",
            [(m, result.scaling_factor(m)) for m in methods]
            + [(f"{m} error", result.scalability_error(m)) for m in methods],
        )
    )

    asap_err = result.scalability_error("ASAP")
    baseline_errs = [result.scalability_error(m) for m in ("DEDI", "RAND", "MIX")]
    # ASAP's candidate sets grow with the population — its scaling
    # factor tracks the population ratio.
    assert asap_err < min(baseline_errs)
    assert asap_err < 0.45
    # Fixed-probe methods stay near factor 1 (error ≈ 1 − 1/ratio).
    assert all(err > 0.5 for err in baseline_errs)
    assert all(result.scaling_factor(m) < 2.0 for m in ("DEDI", "RAND", "MIX"))
