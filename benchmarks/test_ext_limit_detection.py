"""Extension bench — the four Skype limits, detected programmatically.

Section 5 identifies the limits by manual trace inspection; the
:mod:`repro.skype.limits` detectors encode the same criteria.  This
bench runs them over the 14-session study and prints the per-limit
session sets — the reproduction's machine-checkable version of the
paper's narrative.
"""

from repro.evaluation.report import render_kv_table
from repro.measurement.tools import KingEstimator
from repro.skype.analyzer import TraceAnalyzer
from repro.skype.limits import LimitThresholds, detect_limits


def test_ext_limit_detection(benchmark, eval_scenario, section5_result):
    analyzer = TraceAnalyzer(
        eval_scenario.prefix_table,
        king=KingEstimator(eval_scenario.latency, seed=0, non_response_rate=0.0),
        population=eval_scenario.population,
    )
    king = KingEstimator(eval_scenario.latency, seed=0, non_response_rate=0.0)

    report = benchmark.pedantic(
        lambda: detect_limits(
            section5_result.analyses,
            section5_result.results,
            analyzer,
            king=king,
            population=eval_scenario.population,
            thresholds=LimitThresholds(),
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(render_kv_table("=== extension — detected Skype limits ===", report.summary_rows()))
    for finding in report.limit1[:5]:
        print(
            f"  Limit 1: session {finding.session_id} major path "
            f"{finding.major_path_rtt_ms:.0f} ms but a probed path at "
            f"{finding.best_probed_rtt_ms:.0f} ms existed "
            f"({finding.wasted_ms:.0f} ms wasted)"
        )
    for session_id, stab_ms in sorted(report.limit3.items())[:5]:
        print(f"  Limit 3: session {session_id} stabilized after {stab_ms / 1000:.1f} s")

    # The study must exhibit every limit class the paper reports.
    assert report.limit2, "same-AS probing absent"
    assert report.limit3, "no long stabilization session"
    assert report.limit4, "no probing-heavy session"
    assert report.sessions_with_any_limit()
