"""Fig. 2 — RTT distribution of random sessions (paper Section 3.3).

(a) the distribution of direct IP routing RTTs;
(b) direct vs optimal one-hop relay RTT per session.

Paper shape: most sessions below 200 ms; ~1-10% above the 200-300 ms
range (a small minority extremely slow); ~60% of sessions improved by
the optimal one-hop relay; most optimal one-hop RTTs under ~100-150 ms.
"""

import numpy as np

from repro.evaluation.report import render_cdf_row, render_kv_table
from repro.evaluation.section3 import run_section3
from repro.util.stats import fraction_above


def test_fig02_rtt_distribution(benchmark, eval_scenario, workload):
    result = benchmark.pedantic(
        lambda: run_section3(eval_scenario, workload=workload),
        rounds=1,
        iterations=1,
    )

    direct = result.direct_rtts
    optimal = result.optimal_one_hop
    finite = np.isfinite(direct)

    print()
    print("=== Fig. 2(a) — direct IP routing RTT distribution ===")
    print(render_cdf_row("direct", direct, "ms"))
    print(
        render_kv_table(
            "tail fractions:",
            [
                ("P[direct > 200 ms]", fraction_above(direct[finite], 200.0)),
                ("P[direct > 300 ms]", fraction_above(direct[finite], 300.0)),
                ("P[direct > 1 s]", fraction_above(direct[finite], 1000.0)),
                ("unreachable fraction", float(np.mean(~finite))),
            ],
        )
    )

    print()
    print("=== Fig. 2(b) — direct vs optimal one-hop relay ===")
    print(render_cdf_row("direct", direct, "ms"))
    print(render_cdf_row("opt 1-hop", optimal, "ms"))
    print(
        render_kv_table(
            "paper targets (~60% improved; optimal mostly fast):",
            [
                ("fraction improved by 1-hop", result.improved_fraction),
                ("P[opt 1-hop < 150 ms]", 1.0 - fraction_above(optimal[np.isfinite(optimal)], 150.0)),
            ],
        )
    )

    # Shape assertions (loose: shapes, not absolutes).
    assert 0.001 < result.latent_fraction < 0.4
    assert result.improved_fraction > 0.15
