"""Fig. 3 — RTT reduction by the optimal one-hop relay (Section 3.3).

(a) the reduction ratio r = (direct − opt1hop)/direct over improved
    sessions, evenly spread across (0, 1);
(b) for *latent* sessions (direct > 300 ms), the optimal one-hop RTT —
    the paper's headline: every latent session gets below 300 ms.
"""

import numpy as np

from repro.evaluation.report import render_cdf_row, render_kv_table
from repro.evaluation.section3 import run_section3


def test_fig03_rtt_reduction(benchmark, eval_scenario, workload):
    result = benchmark.pedantic(
        lambda: run_section3(eval_scenario, workload=workload),
        rounds=1,
        iterations=1,
    )

    print()
    print("=== Fig. 3(a) — RTT reduction ratio of improved sessions ===")
    print(render_cdf_row("reduction", result.reduction_ratios))
    spread = float(np.percentile(result.reduction_ratios, 90) - np.percentile(result.reduction_ratios, 10))
    print(render_kv_table("spread check (paper: evenly distributed):", [("p90 - p10", spread)]))

    print()
    print("=== Fig. 3(b) — latent sessions: direct vs optimal one-hop ===")
    print(render_cdf_row("direct", result.latent_direct, "ms"))
    print(render_cdf_row("opt 1-hop", result.latent_optimal, "ms"))
    print(
        render_kv_table(
            "rescue rate (paper: 100%):",
            [
                ("latent sessions", int(result.latent_direct.size)),
                ("fraction rescued (<300 ms via 1-hop)", result.rescued_fraction),
            ],
        )
    )

    assert result.latent_direct.size > 10
    # Paper: all latent sessions rescued; we assert the overwhelming majority.
    assert result.rescued_fraction > 0.9
    # Reduction ratios spread broadly, not clumped.
    assert spread > 0.2
