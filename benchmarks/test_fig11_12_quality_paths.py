"""Figs. 11-12 — number of quality paths per latent session (Section 7.2).

Paper shape: DEDI/RAND/MIX never exceed ~500 quality paths per session,
while 90% of ASAP sessions find 1-2 orders of magnitude more (10^4 at
the paper's population; proportionally fewer at our scaled population).
"""

import numpy as np

from repro.evaluation.report import render_kv_table, render_series


def test_fig11_12_quality_paths(benchmark, section7_result):
    result = benchmark.pedantic(lambda: section7_result, rounds=1, iterations=1)

    methods = ("DEDI", "RAND", "MIX", "ASAP")
    print()
    print(f"latent sessions evaluated: {len(result.latent_sessions)}")
    print(
        render_series(
            "=== Figs. 11-12 — quality paths per session (CDF quantiles) ===",
            [(m, result.series(m, "quality_paths")) for m in methods],
        )
    )

    medians = {m: float(np.median(result.series(m, "quality_paths"))) for m in methods}
    best_baseline = max(medians[m] for m in ("DEDI", "RAND", "MIX"))
    print(
        render_kv_table(
            "medians:",
            [(m, medians[m]) for m in methods]
            + [("ASAP ÷ best baseline", medians["ASAP"] / max(best_baseline, 1.0))],
        )
    )

    # Paper shape: ASAP finds order(s) of magnitude more quality paths.
    assert medians["ASAP"] > 10 * best_baseline
    # Baselines are capped by their probe budgets.
    assert best_baseline <= 500
