"""Extension bench — call setup time: ASAP vs the Skype-like policy.

Not a paper figure, but the paper's Limit 3 argument quantified: Skype
stabilizes in tens-to-hundreds of seconds of probing, while ASAP's
select-close-relay completes in a handful of RTTs.  Both run on the
same scenario; ASAP setups go through the event-driven runtime so every
hop pays real simulated latency.
"""

import numpy as np

from repro.core import ASAPConfig
from repro.core.config import derive_k_hops
from repro.core.runtime import ASAPRuntime
from repro.evaluation.report import render_kv_table
from repro.evaluation.sessions import generate_workload


def test_ext_call_setup_time(benchmark, eval_scenario, section5_result):
    workload = generate_workload(eval_scenario, 2000, seed=3, latent_target=30)
    latent = workload.latent()[:30]

    def run_setups():
        runtime = ASAPRuntime(
            eval_scenario,
            ASAPConfig(k_hops=derive_k_hops(eval_scenario.matrices)),
        )
        for offset, session in enumerate(latent):
            runtime.schedule_call(session.caller, session.callee, at_ms=float(offset))
        runtime.run()
        return runtime

    runtime = benchmark.pedantic(run_setups, rounds=1, iterations=1)
    setups = np.array(runtime.setup_times_ms())
    skype_stab = np.array(section5_result.stabilization_seconds()) * 1000.0

    print()
    print("=== extension — relay selection latency ===")
    print(
        render_kv_table(
            "ASAP call setup (ms, simulated network):",
            [
                ("sessions", len(setups)),
                ("median setup", float(np.median(setups))),
                ("p90 setup", float(np.percentile(setups, 90))),
                ("max setup", float(setups.max())),
            ],
        )
    )
    print(
        render_kv_table(
            "Skype-like stabilization (ms), same scenario:",
            [
                ("median", float(np.median(skype_stab))),
                ("max", float(skype_stab.max())),
            ],
        )
    )
    ratio = float(np.median(skype_stab[skype_stab > 0])) / max(float(np.median(setups)), 1.0) if np.any(skype_stab > 0) else float("inf")
    print(f"  stabilization/setup median ratio ≈ {ratio:.0f}x")

    # ASAP setups complete in a handful of RTTs (single-digit seconds
    # even on terrible paths); Skype bounces for far longer somewhere.
    assert len(setups) == len(latent)
    assert float(np.median(setups)) < 5_000.0
    assert skype_stab.max() > float(np.median(setups))
