"""Scale benchmark of matrix assembly (10k → 1M clusters), recorded as
the committed baseline in ``benchmarks/BENCH_matrix.json``.

The 10k tier always runs (seconds); the 100k and 1M tiers are minutes
of object-path work and only run with ``REPRO_BENCH_BIG=1`` — CI's
perf-smoke job runs the 10k tier through the module's ``--check``
gate instead.
"""

import json
import os
from pathlib import Path

from repro.evaluation.matrixbench import (
    SCALES,
    run_bench,
    validate_bench_document,
)

BIG_TIERS_ENV = "REPRO_BENCH_BIG"


def test_bench_matrix_scale_tiers():
    scales = ["10k"]
    if os.environ.get(BIG_TIERS_ENV, "") not in ("", "0"):
        scales += ["100k", "1m"]

    # At least two workers even on a single-CPU box: the recorded
    # baseline then always carries the chunk plan and per-chunk
    # timings, with ``cpu_count`` telling readers whether the speedup
    # number had real cores behind it.
    document = run_bench(scales, workers=max(2, os.cpu_count() or 1))
    assert validate_bench_document(document) == []

    for tier in document["scales"]:
        assert tier["clusters"] == SCALES[tier["scale"]]
        assert tier["bit_identical"], tier
        # The vectorized path must beat the scalar reference at every
        # tier — and by 5x or more at the largest tier exercised.
        assert tier["flat_speedup_vs_object"] > 1.0, tier
    assert document["scales"][-1]["flat_speedup_vs_object"] >= 5.0

    # Parallel assembly only pays off with real cores behind the pool;
    # the shipped chunking must beat serial whenever there are >= 2.
    parallel = document["scales"][0]["parallel"]
    if document["cpu_count"] >= 2:
        assert parallel is not None
        assert parallel["bit_identical"]
        assert parallel["object_speedup"] > 1.0, parallel

    (Path(__file__).parent / "BENCH_matrix.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )


def test_recorded_baseline_schema():
    """The committed BENCH_matrix.json always matches the schema (so the
    obs-smoke job's ``recorded['serial_seconds']`` read keeps working)."""
    recorded = json.loads(
        (Path(__file__).parent / "BENCH_matrix.json").read_text()
    )
    assert validate_bench_document(recorded) == []
    assert recorded["serial_seconds"] > 0.0
    assert len(recorded["scales"]) >= 1
