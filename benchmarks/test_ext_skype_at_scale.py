"""Extension bench — Skype limits at scale + AS-path inference accuracy.

Two aggregate studies the paper's 14 hand-collected sessions could not
provide:

- **Skype limits over 40 randomized problematic sessions** — aggregate
  frequencies of the four limits instead of anecdotes;
- **AS-path inference accuracy** (property [16]) — how often the
  shortest valley-free path matches the actually selected policy route.
"""

import numpy as np

from repro.bgp.pathinfer import evaluate_inference
from repro.bgp.routing import PolicyRouter
from repro.evaluation.report import render_kv_table
from repro.evaluation.section5 import run_skype_batch
from repro.measurement.tools import KingEstimator
from repro.skype.analyzer import TraceAnalyzer
from repro.skype.limits import LimitThresholds, detect_limits
from repro.util.rng import derive_rng


def test_ext_skype_limits_at_scale(benchmark, eval_scenario):
    study = benchmark.pedantic(
        lambda: run_skype_batch(eval_scenario, session_count=40, seed=3),
        rounds=1,
        iterations=1,
    )
    analyzer = TraceAnalyzer(
        eval_scenario.prefix_table,
        king=KingEstimator(eval_scenario.latency, seed=3, non_response_rate=0.0),
        population=eval_scenario.population,
    )
    king = KingEstimator(eval_scenario.latency, seed=3, non_response_rate=0.0)
    report = detect_limits(
        study.analyses,
        study.results,
        analyzer,
        king=king,
        population=eval_scenario.population,
        thresholds=LimitThresholds(),
    )

    n = len(study.analyses)
    probed = study.probed_counts()
    stab = study.stabilization_seconds()
    print()
    print(
        render_kv_table(
            "=== extension — Skype limits over 40 randomized sessions ===",
            [
                ("sessions", n),
                ("Limit 1 frequency", len(report.limit1) / n),
                ("Limit 2 frequency", len(report.limit2) / n),
                ("Limit 3 frequency", len(report.limit3) / n),
                ("Limit 4 frequency", len(report.limit4) / n),
                ("median probed nodes", float(np.median(probed))),
                ("median stabilization (s)", float(np.median(stab))),
                ("p90 stabilization (s)", float(np.percentile(stab, 90))),
            ],
        )
    )

    assert n == 40
    # On problematic sessions the limits are endemic, not anecdotal.
    assert len(report.limit2) / n > 0.5
    assert len(report.limit4) / n > 0.5
    assert len(report.limit3) >= 1


def test_ext_path_inference_accuracy(benchmark, eval_scenario):
    graph = eval_scenario.topology.graph
    router = PolicyRouter(graph)
    stubs = eval_scenario.topology.stub_ases()
    rng = derive_rng(0, "pathinfer-bench")
    pairs = [
        (int(a), int(b))
        for a, b in zip(
            rng.choice(stubs, size=400), rng.choice(stubs, size=400)
        )
        if a != b
    ]

    report = benchmark.pedantic(
        lambda: evaluate_inference(graph, router, pairs), rounds=1, iterations=1
    )
    print()
    print(
        render_kv_table(
            "=== extension — shortest-valley-free AS path inference vs policy routes ===",
            [
                ("pairs", report.pairs),
                ("exact path match rate", report.exact_rate),
                ("hop-count match rate", report.length_rate),
                ("policy detour rate", report.detour_rate),
                ("inference longer than policy", report.inferred_longer),
            ],
        )
    )

    # Mao et al.'s observation on our substrate: hop counts mostly match.
    assert report.length_rate > 0.6
    # The shortest valley-free path can never exceed the policy route.
    assert report.inferred_longer == 0
