"""Table 1 / Fig. 5 — the 14-session Skype study plan (Section 5).

Prints the site placement (two regions, sites 1-6 co-located) and the
caller-callee plan, plus each session's analyzed major-path kind —
the paper observed 4 direct, 7 one-hop-relayed symmetric sessions and
several asymmetric ones.
"""

from repro.evaluation.section5 import REGION_A_SITES, REGION_B_SITES


def test_table1_skype_sessions(benchmark, section5_result):
    study = benchmark.pedantic(lambda: section5_result, rounds=1, iterations=1)

    print()
    print("=== Fig. 5 — sites ===")
    for site in sorted(study.plan.site_host):
        host = study.plan.host(site)
        region = study.plan.region_of[site]
        print(f"  site {site:>2}  region {region}  host {host.ip}  AS {host.asn}")

    print()
    print("=== Table 1 — 14 calling sessions ===")
    header = "  session :" + "".join(f"{i:>7d}" for i in range(1, 15))
    plan = "  sites   :" + "".join(f"{c:>4d}-{d:<2d}" for c, d in study.sessions)
    print(header)
    print(plan)

    print()
    print("=== analyzed major paths ===")
    direct_count = relay_count = asymmetric_count = 0
    for analysis in study.analyses:
        fwd_kind = "relay" if analysis.forward.uses_relay else "direct"
        bwd_kind = "relay" if analysis.backward.uses_relay else "direct"
        if analysis.asymmetric:
            asymmetric_count += 1
        if fwd_kind == "direct" and bwd_kind == "direct":
            direct_count += 1
        else:
            relay_count += 1
        print(
            f"  session {analysis.session_id:>2}: forward={fwd_kind:<6} "
            f"backward={bwd_kind:<6} "
            f"{'asymmetric' if analysis.asymmetric else 'symmetric'}"
        )
    print(
        f"\n  direct-only sessions: {direct_count}, relayed: {relay_count}, "
        f"asymmetric: {asymmetric_count} "
        "(paper: 4 direct, 8 relayed, plus asymmetric sessions)"
    )

    assert len(study.analyses) == 14
    assert relay_count >= 1 and direct_count >= 1
