"""Shared fixtures for the benchmark harness.

One evaluation-scale scenario (the stand-in for the paper's 23,366-IP
measurement dataset) is built per session and shared by every figure
bench.  Heavy experiment runs that feed several figures (the Section 7
method comparison, the Section 5 Skype study) are likewise computed
once and cached.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path

import pytest

from repro.evaluation.section5 import run_section5
from repro.evaluation.section7 import run_section7
from repro.evaluation.sessions import generate_workload
from repro.scenario import ScenarioConfig, build_scenario
from repro.storage.cache import CACHE_DIR_ENV

#: Benchmark workload scale (the paper used 100,000 sessions / ~1,000
#: latent; we evaluate a scaled-down but shape-preserving slice).
SESSION_COUNT = 4000
LATENT_TARGET = 150
MAX_LATENT = 150

#: Artifact cache for the benchmark world: the evaluation-scale scenario
#: takes tens of seconds to regenerate, so warm benchmark runs load it
#: from here instead.  Override with $REPRO_CACHE_DIR; the directory is
#: git-ignored.
DEFAULT_CACHE_DIR = Path(__file__).parent / ".scenario-cache"


@pytest.fixture(scope="session")
def eval_scenario():
    cache_dir = os.environ.get(CACHE_DIR_ENV, "").strip() or str(DEFAULT_CACHE_DIR)
    return build_scenario(
        dataclasses.replace(
            ScenarioConfig.preset("evaluation", seed=0), cache_dir=cache_dir
        )
    )


@pytest.fixture(scope="session")
def workload(eval_scenario):
    return generate_workload(
        eval_scenario, SESSION_COUNT, seed=0, latent_target=LATENT_TARGET
    )


@pytest.fixture(scope="session")
def section7_result(eval_scenario, workload):
    return run_section7(
        eval_scenario,
        seed=0,
        workload=workload,
        max_latent_sessions=MAX_LATENT,
    )


@pytest.fixture(scope="session")
def section5_result(eval_scenario):
    return run_section5(eval_scenario, seed=0)
